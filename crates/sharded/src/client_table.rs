//! Durable per-client operation table — the persistent half of detectable
//! exactly-once ingest.
//!
//! Each shard's [`pmem::PmemPool`] carries one [`ClientTable`] registered
//! under [`CLIENT_TABLE_ROOT`].  For every client the table records the
//! highest **committed** operation id on that shard; the drain worker
//! advances it atomically with the batch it just applied, so after a crash
//! the reopened service can tell every client exactly which of its
//! operations took effect (memento-style *detectable* recovery, applied at
//! batch granularity).
//!
//! ## Layout (relative to the region base, 64-byte aligned)
//!
//! ```text
//! +0    magic               u64
//! +8    slot capacity       u64
//! +16   header CRC32C       u64 (covers bytes 0..16)
//! +24.. reserved
//! +64   apply journal       [state, client_id, op_id, cursor_k, cursor_records, crc]
//! +128  slots[capacity]     each 64 B: [client_id, committed_op, resume_op,
//!                           resume_skip, crc] (one cache line per slot)
//! ```
//!
//! Every persistent record carries a trailing CRC32C sealed in the **same**
//! single-cache-line store as the data it covers, so under ADR a crash can
//! never separate a record from its checksum.  [`ClientTable::create_or_open`]
//! verifies all three record kinds (header, journal, every slot — including
//! never-used ones, which are sealed over zeroes at creation) and refuses a
//! corrupt image with [`dgap::GraphError::Corrupted`] carrying the pool
//! label and byte offset; media faults therefore surface as a detected
//! error, never as a silently wrong watermark.
//!
//! The **journal** (one cache line) tracks the single operation the shard's
//! drain worker is currently applying: after every individual [`dgap::Update`]
//! the worker persists `(cursor_k, cursor_records)` — "the first `cursor_k`
//! updates of this operation are applied, and the backend's record counter
//! stood at `cursor_records` afterwards" — as one 16-byte store.  A crash
//! therefore leaves **at most one update in doubt**, and because every edge
//! insert *and* delete adds exactly one record (DGAP's tombstone convention;
//! [`dgap::DynamicGraph::num_edges`] counts records), comparing the
//! recovered record counter against `cursor_records` resolves it:
//! `records > cursor_records` means update `cursor_k` landed, otherwise it
//! did not (vertex inserts add no record, but they are idempotent, so
//! re-applying is harmless either way).
//!
//! [`ClientTable::create_or_open`] performs that resolution *before* any
//! post-recovery traffic runs: the verdict is parked in the owning client's
//! slot (`resume_op`/`resume_skip`), so when the client replays the same
//! operation the worker skips the already-applied prefix.  Parking it in the
//! slot rather than the journal means a *second* crash — with a different
//! client's operation mid-apply — cannot orphan the first client's resume
//! point.
//!
//! Exactly-once therefore needs the client to honour one contract: **resend
//! the identical update vector under the same `(client_id, op_id)`**, in op
//! id order ([`crate::IngestPipeline::submit_tagged`] documents the same
//! rule).

use dgap::{GraphError, GraphResult};
use pmem::{Crc32c, PmemError, PmemOffset, PmemPool, RootId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Root-directory slot holding the client table region.
pub const CLIENT_TABLE_ROOT: RootId = RootId::Custom(0);

/// Magic number at the base of every client-table region ("DGAPCLTB").
const TABLE_MAGIC: u64 = 0x4447_4150_434c_5442;

/// Header CRC offset from the region base (covers bytes `0..16`).
const HEADER_CRC_OFF: u64 = 16;

/// Journal offset from the region base (its own cache line).
const JOURNAL_OFF: u64 = 64;

/// First slot offset from the region base.
const SLOTS_OFF: u64 = 128;

/// Bytes per client slot: `[client_id, committed_op, resume_op,
/// resume_skip, crc]`, padded to one cache line so the slot and its
/// checksum always land (or are lost) together.
const SLOT_BYTES: u64 = 64;

/// CRC32C (as a widened `u64`) of a word run, little-endian — the seal
/// format every client-table record uses.
fn crc_of_words(words: &[u64]) -> u64 {
    let mut hasher = Crc32c::new();
    for w in words {
        hasher.update(&w.to_le_bytes());
    }
    hasher.finish() as u64
}

/// Client slots per shard.  A bump allocator with no free list backs the
/// region, so the capacity is fixed at creation time.
const DEFAULT_CAPACITY: u64 = 128;

/// Journal states.
const STATE_IDLE: u64 = 0;
const STATE_APPLYING: u64 = 1;

/// DRAM mirror of one client slot.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    /// Slot index inside the persistent array.
    index: u64,
    /// Highest committed op id.
    committed: u64,
    /// Op id with a parked resume cursor (0 = none).
    resume_op: u64,
    /// First update index of `resume_op` still to apply.
    resume_skip: u64,
}

#[derive(Debug, Default)]
struct TableState {
    /// client id -> slot mirror.
    slots: HashMap<u64, SlotState>,
    /// Number of persistent slots in use.
    used: u64,
}

/// Durable per-client operation watermarks for one shard.
///
/// All mutating methods are called by that shard's single drain worker; the
/// internal mutex only guards against concurrent read-side queries
/// ([`ClientTable::committed`], [`ClientTable::watermarks`]) from service
/// threads.
pub struct ClientTable {
    pool: Arc<PmemPool>,
    base: PmemOffset,
    capacity: u64,
    state: Mutex<TableState>,
}

impl std::fmt::Debug for ClientTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientTable")
            .field("base", &self.base)
            .field("capacity", &self.capacity)
            .finish()
    }
}

fn space_err(err: PmemError) -> GraphError {
    GraphError::OutOfSpace(format!("client table: {err}"))
}

/// The structured error a failed checksum surfaces: which record, in which
/// pool, at which byte offset.
fn corrupt(pool: &PmemPool, region: &str, offset: PmemOffset) -> GraphError {
    GraphError::Corrupted {
        region: format!("client table {region}"),
        detail: format!("{} @ +{offset}: crc mismatch", pool.label()),
    }
}

impl ClientTable {
    /// Create the table in a fresh pool, or reopen (and crash-resolve) an
    /// existing one.
    ///
    /// `current_records` is the backend's recovered record count
    /// ([`dgap::DynamicGraph::num_edges`]); it disambiguates the single
    /// in-doubt update of an interrupted operation.  Resolution happens here,
    /// before any post-recovery updates run, so it must be called before the
    /// shard's drain worker starts.
    pub fn create_or_open(pool: &Arc<PmemPool>, current_records: u64) -> GraphResult<ClientTable> {
        match pool.root(CLIENT_TABLE_ROOT) {
            Ok(base) => Self::open_at(pool, base, current_records),
            Err(PmemError::NoSuchRoot(_)) => Self::create(pool),
            Err(err) => Err(GraphError::Other(format!("client table root: {err}"))),
        }
    }

    fn create(pool: &Arc<PmemPool>) -> GraphResult<ClientTable> {
        let bytes = (SLOTS_OFF + DEFAULT_CAPACITY * SLOT_BYTES) as usize;
        let base = pool.alloc_zeroed(bytes, 64).map_err(space_err)?;
        pool.write_u64(base, TABLE_MAGIC);
        pool.write_u64(base + 8, DEFAULT_CAPACITY);
        pool.write_u64(
            base + HEADER_CRC_OFF,
            crc_of_words(&[TABLE_MAGIC, DEFAULT_CAPACITY]),
        );
        let table = ClientTable {
            pool: Arc::clone(pool),
            base,
            capacity: DEFAULT_CAPACITY,
            state: Mutex::new(TableState::default()),
        };
        // Seal the idle journal and every (all-zero) slot so the open-time
        // verification can tell "never used" from "zeroed by corruption".
        table.write_journal([STATE_IDLE, 0, 0, 0, 0]);
        for index in 0..DEFAULT_CAPACITY {
            table.write_slot(index, 0, 0, 0, 0);
        }
        pool.persist(base, bytes);
        pool.set_root(CLIENT_TABLE_ROOT, base).map_err(space_err)?;
        Ok(table)
    }

    fn open_at(
        pool: &Arc<PmemPool>,
        base: PmemOffset,
        current_records: u64,
    ) -> GraphResult<ClientTable> {
        let magic = pool.read_u64(base);
        let capacity = pool.read_u64(base + 8);
        if pool.read_u64(base + HEADER_CRC_OFF) != crc_of_words(&[magic, capacity]) {
            return Err(corrupt(pool, "header", base));
        }
        if magic != TABLE_MAGIC {
            return Err(GraphError::Other(
                "client table root points at a non-table region".into(),
            ));
        }
        let table = ClientTable {
            pool: Arc::clone(pool),
            base,
            capacity,
            state: Mutex::new(TableState::default()),
        };
        {
            let mut st = table.state.lock().unwrap();
            let mut in_tail = false;
            for index in 0..capacity {
                let off = base + SLOTS_OFF + index * SLOT_BYTES;
                let mut raw = [0u64; 5];
                pool.read_u64_slice(off, &mut raw);
                let [client, committed, resume_op, resume_skip, crc] = raw;
                if crc != crc_of_words(&raw[..4]) {
                    return Err(corrupt(pool, &format!("slot {index}"), off));
                }
                if client == 0 {
                    in_tail = true; // slots are allocated densely
                    continue;
                }
                if in_tail {
                    return Err(corrupt(pool, &format!("slot {index}"), off));
                }
                st.used += 1;
                st.slots.insert(
                    client,
                    SlotState {
                        index,
                        committed,
                        resume_op,
                        resume_skip,
                    },
                );
            }
        }
        table.verify_journal()?;
        table.resolve_journal(current_records)?;
        Ok(table)
    }

    /// Check the apply journal's seal; a mismatch means the single record
    /// that decides in-doubt-update resolution cannot be trusted, which is
    /// fatal for exactly-once semantics.
    fn verify_journal(&self) -> GraphResult<()> {
        let mut j = [0u64; 6];
        self.pool.read_u64_slice(self.base + JOURNAL_OFF, &mut j);
        if j[5] != crc_of_words(&j[..5]) {
            return Err(corrupt(&self.pool, "journal", self.base + JOURNAL_OFF));
        }
        Ok(())
    }

    /// Persist the apply journal plus its seal as one single-cache-line
    /// store (48 bytes, line-aligned): under ADR a crash keeps or loses the
    /// record and its CRC together.
    fn write_journal(&self, words: [u64; 5]) {
        let crc = crc_of_words(&words);
        let [a, b, c, d, e] = words;
        self.pool
            .write_u64_slice(self.base + JOURNAL_OFF, &[a, b, c, d, e, crc]);
        self.pool.persist(self.base + JOURNAL_OFF, 48);
    }

    /// Resolve an interrupted operation left in the apply journal: decide
    /// whether the in-doubt update landed, park the resume cursor in the
    /// owning client's slot, and return the journal to idle.
    fn resolve_journal(&self, current_records: u64) -> GraphResult<()> {
        let mut j = [0u64; 5];
        self.pool.read_u64_slice(self.base + JOURNAL_OFF, &mut j);
        let [state, client, op, cursor_k, cursor_records] = j;
        if state != STATE_APPLYING || client == 0 {
            return Ok(());
        }
        // Every edge insert/delete adds exactly one record; if the counter
        // moved past the cursor the in-doubt update landed.
        let skip = if current_records > cursor_records {
            cursor_k + 1
        } else {
            cursor_k
        };
        let mut st = self.state.lock().unwrap();
        let slot = self.slot_or_insert(&mut st, client)?;
        slot.resume_op = op;
        slot.resume_skip = skip;
        let (index, committed) = (slot.index, slot.committed);
        self.write_slot(index, client, committed, op, skip);
        drop(st);
        self.write_journal([STATE_IDLE, 0, 0, 0, 0]);
        Ok(())
    }

    /// Read-only view of another pool's table: client id -> committed op id.
    /// A pool with no table (fresh shard) reports no clients.
    pub fn peek(pool: &PmemPool) -> HashMap<u64, u64> {
        let Ok(base) = pool.root(CLIENT_TABLE_ROOT) else {
            return HashMap::new();
        };
        if pool.read_u64(base) != TABLE_MAGIC {
            return HashMap::new();
        }
        let capacity = pool.read_u64(base + 8);
        let mut out = HashMap::new();
        for index in 0..capacity {
            let off = base + SLOTS_OFF + index * SLOT_BYTES;
            let client = pool.read_u64(off);
            if client == 0 {
                break;
            }
            out.insert(client, pool.read_u64(off + 8));
        }
        out
    }

    /// Verify every checksummed record of `pool`'s table — header, apply
    /// journal, all slots — without opening it (and without the journal
    /// resolution side effects of [`ClientTable::create_or_open`]).  A pool
    /// carrying no table verifies vacuously.  This is what
    /// [`crate::ShardedGraph::open_dgap`] runs per shard to decide whether
    /// the shard's exactly-once state can be trusted.
    pub fn verify_pool(pool: &PmemPool) -> GraphResult<()> {
        let Ok(base) = pool.root(CLIENT_TABLE_ROOT) else {
            return Ok(());
        };
        let magic = pool.read_u64(base);
        let capacity = pool.read_u64(base + 8);
        if pool.read_u64(base + HEADER_CRC_OFF) != crc_of_words(&[magic, capacity]) {
            return Err(corrupt(pool, "header", base));
        }
        let mut j = [0u64; 6];
        pool.read_u64_slice(base + JOURNAL_OFF, &mut j);
        if j[5] != crc_of_words(&j[..5]) {
            return Err(corrupt(pool, "journal", base + JOURNAL_OFF));
        }
        for index in 0..capacity {
            let off = base + SLOTS_OFF + index * SLOT_BYTES;
            let mut raw = [0u64; 5];
            pool.read_u64_slice(off, &mut raw);
            if raw[4] != crc_of_words(&raw[..4]) {
                return Err(corrupt(pool, &format!("slot {index}"), off));
            }
        }
        Ok(())
    }

    /// The checksummed byte range the table occupies in `pool` — `(base,
    /// len)` — or `None` when the pool carries no table.  The media-fault
    /// harness uses this to aim injections at CRC-covered state.
    pub fn region(pool: &PmemPool) -> Option<(PmemOffset, u64)> {
        let base = pool.root(CLIENT_TABLE_ROOT).ok()?;
        if pool.read_u64(base) != TABLE_MAGIC {
            return None;
        }
        let capacity = pool.read_u64(base + 8);
        Some((base, SLOTS_OFF + capacity * SLOT_BYTES))
    }

    /// Highest committed op id for `client` on this shard, if any.
    pub fn committed(&self, client: u64) -> Option<u64> {
        self.state
            .lock()
            .unwrap()
            .slots
            .get(&client)
            .map(|s| s.committed)
    }

    /// All known clients and their committed watermarks.
    pub fn watermarks(&self) -> HashMap<u64, u64> {
        self.state
            .lock()
            .unwrap()
            .slots
            .iter()
            .map(|(&c, s)| (c, s.committed))
            .collect()
    }

    /// Start applying `(client, op)` whose backend record counter currently
    /// reads `records`.  Persists the apply journal and returns the index of
    /// the first update to apply: 0 for a fresh operation, or the parked
    /// resume cursor when this is the replay of an interrupted one.
    ///
    /// Must be bracketed with [`ClientTable::advance`] per update and
    /// [`ClientTable::commit`] at the end, all from the owning shard's drain
    /// worker.
    pub fn begin(&self, client: u64, op: u64, records: u64) -> GraphResult<u64> {
        let mut st = self.state.lock().unwrap();
        // Ensure the slot exists up front so commit cannot fail on a full
        // table after the updates have already been applied.
        let slot = self.slot_or_insert(&mut st, client)?;
        let skip = if slot.resume_op == op {
            slot.resume_skip
        } else {
            0
        };
        drop(st);
        self.write_journal([STATE_APPLYING, client, op, skip, records]);
        Ok(skip)
    }

    /// Record that the first `cursor_k` updates of the in-flight operation
    /// are applied and the backend record counter now reads `records`.  The
    /// journal line (cursor *and* seal) is rewritten as one single-line
    /// store: a crash leaves at most one update in doubt, and can never
    /// leave a cursor without a matching checksum.
    pub fn advance(&self, cursor_k: u64, records: u64) {
        let mut head = [0u64; 3];
        self.pool.read_u64_slice(self.base + JOURNAL_OFF, &mut head);
        let [state, client, op] = head;
        self.write_journal([state, client, op, cursor_k, records]);
    }

    /// Commit `(client, op)`: advance the client's durable watermark, clear
    /// any parked resume cursor, and return the journal to idle.  The caller
    /// must have made the applied updates durable first (the commit record
    /// is the *last* thing to land).
    pub fn commit(&self, client: u64, op: u64) {
        let mut st = self.state.lock().unwrap();
        let slot = st
            .slots
            .get_mut(&client)
            .expect("commit without begin: slot missing");
        slot.committed = slot.committed.max(op);
        slot.resume_op = 0;
        slot.resume_skip = 0;
        let (index, committed) = (slot.index, slot.committed);
        self.write_slot(index, client, committed, 0, 0);
        drop(st);
        self.write_journal([STATE_IDLE, 0, 0, 0, 0]);
    }

    fn slot_or_insert<'a>(
        &self,
        st: &'a mut TableState,
        client: u64,
    ) -> GraphResult<&'a mut SlotState> {
        if !st.slots.contains_key(&client) {
            if st.used >= self.capacity {
                return Err(GraphError::OutOfSpace(format!(
                    "client table full: {} clients on this shard",
                    self.capacity
                )));
            }
            let index = st.used;
            st.used += 1;
            self.write_slot(index, client, 0, 0, 0);
            st.slots.insert(
                client,
                SlotState {
                    index,
                    committed: 0,
                    resume_op: 0,
                    resume_skip: 0,
                },
            );
        }
        Ok(st.slots.get_mut(&client).unwrap())
    }

    /// Persist one slot (data plus seal) as a single one-cache-line store.
    fn write_slot(
        &self,
        index: u64,
        client: u64,
        committed: u64,
        resume_op: u64,
        resume_skip: u64,
    ) {
        let off = self.base + SLOTS_OFF + index * SLOT_BYTES;
        let words = [client, committed, resume_op, resume_skip];
        let crc = crc_of_words(&words);
        let [a, b, c, d] = words;
        self.pool.write_u64_slice(off, &[a, b, c, d, crc]);
        self.pool.persist(off, 40);
    }
}

/// Per-client committed watermarks recovered from every shard's table,
/// reported by [`crate::ShardedGraph::open_dgap`] as part of
/// [`crate::ShardedRecovery`].
///
/// An operation tagged `(client_id, op_id)` fans a sub-batch to **every**
/// shard, so the operation as a whole is committed exactly when the *lowest*
/// per-shard watermark has reached it — [`ClientWatermarks::committed`]
/// takes that min (a shard that never saw the client counts as 0).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientWatermarks {
    per_shard: Vec<HashMap<u64, u64>>,
}

impl ClientWatermarks {
    /// Gather the watermarks of every shard pool (in shard order).
    pub fn peek_all(pools: &[Arc<PmemPool>]) -> ClientWatermarks {
        ClientWatermarks {
            per_shard: pools.iter().map(|p| ClientTable::peek(p)).collect(),
        }
    }

    /// Assemble from per-shard maps gathered elsewhere (used by
    /// [`crate::ShardedGraph::open_dgap`], which must skip the tables of
    /// quarantined shards rather than report watermarks read off a corrupt
    /// image).
    pub(crate) fn from_maps(per_shard: Vec<HashMap<u64, u64>>) -> ClientWatermarks {
        ClientWatermarks { per_shard }
    }

    /// Number of shards the map covers.
    pub fn num_shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Highest op id of `client` committed on **all** shards, or `None` if
    /// no shard has ever heard of the client.
    pub fn committed(&self, client: u64) -> Option<u64> {
        if self.per_shard.iter().all(|m| !m.contains_key(&client)) {
            return None;
        }
        Some(
            self.per_shard
                .iter()
                .map(|m| m.get(&client).copied().unwrap_or(0))
                .min()
                .unwrap_or(0),
        )
    }

    /// Every client id any shard knows about.
    pub fn clients(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .per_shard
            .iter()
            .flat_map(|m| m.keys().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmemConfig;

    fn pool() -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PmemConfig::small_test()))
    }

    #[test]
    fn fresh_table_is_empty_and_survives_reopen() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        assert_eq!(t.committed(7), None);
        assert!(t.watermarks().is_empty());
        drop(t);
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        assert_eq!(t.committed(7), None);
    }

    #[test]
    fn commit_advances_the_durable_watermark() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        assert_eq!(t.begin(7, 1, 0).unwrap(), 0);
        t.advance(1, 1);
        t.commit(7, 1);
        assert_eq!(t.committed(7), Some(1));
        // Survives a crash: every step persisted.
        p.simulate_crash();
        let t = ClientTable::create_or_open(&p, 1).unwrap();
        assert_eq!(t.committed(7), Some(1));
        assert_eq!(ClientTable::peek(&p).get(&7), Some(&1));
    }

    #[test]
    fn crash_mid_apply_parks_a_resume_cursor() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        t.begin(7, 1, 10).unwrap();
        t.advance(1, 11);
        t.advance(2, 12);
        // Crash here: 2 updates applied, cursor says records stood at 12.
        p.simulate_crash();

        // Case A: the in-doubt update 2 did NOT land (records still 12).
        let t = ClientTable::create_or_open(&p, 12).unwrap();
        // The client is known (begin persisted its slot) but op 1 never
        // committed: the watermark still reads 0.
        assert_eq!(t.committed(7), Some(0));
        assert_eq!(t.begin(7, 1, 12).unwrap(), 2); // resume at update 2

        // Case B: rebuild the same crash image; update 2 DID land.
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        t.begin(7, 1, 10).unwrap();
        t.advance(1, 11);
        t.advance(2, 12);
        p.simulate_crash();
        let t = ClientTable::create_or_open(&p, 13).unwrap();
        assert_eq!(t.begin(7, 1, 13).unwrap(), 3); // skip past it
    }

    #[test]
    fn resume_cursor_survives_other_clients_applying() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        t.begin(7, 3, 0).unwrap();
        t.advance(1, 1);
        p.simulate_crash();

        let t = ClientTable::create_or_open(&p, 1).unwrap();
        // Another client's op runs (and even crashes) before 7 replays.
        t.begin(8, 1, 1).unwrap();
        t.advance(1, 2);
        t.commit(8, 1);
        // Client 7's parked cursor is still honoured.
        assert_eq!(t.begin(7, 3, 2).unwrap(), 1);
        t.commit(7, 3);
        assert_eq!(t.committed(7), Some(3));
        assert_eq!(t.committed(8), Some(1));
    }

    #[test]
    fn begin_of_a_different_op_ignores_a_stale_cursor() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        t.begin(7, 1, 0).unwrap();
        t.advance(1, 1);
        p.simulate_crash();
        let t = ClientTable::create_or_open(&p, 1).unwrap();
        // The client replays a *different* op id: fresh start.
        assert_eq!(t.begin(7, 2, 1).unwrap(), 0);
    }

    #[test]
    fn table_capacity_is_enforced() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        for client in 1..=DEFAULT_CAPACITY {
            t.begin(client, 1, 0).unwrap();
            t.commit(client, 1);
        }
        assert!(matches!(
            t.begin(DEFAULT_CAPACITY + 1, 1, 0),
            Err(GraphError::OutOfSpace(_))
        ));
    }

    #[test]
    fn bit_flip_in_a_slot_is_detected_on_reopen() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        t.begin(7, 3, 0).unwrap();
        t.commit(7, 3);
        drop(t);
        let (base, _) = ClientTable::region(&p).unwrap();
        // Flip one bit of client 7's committed watermark.
        p.inject_bit_flip(base + SLOTS_OFF + 8, 0);
        let err = match ClientTable::create_or_open(&p, 0) {
            Err(e) => e,
            Ok(_) => panic!("corrupt slot must be detected"),
        };
        match err {
            GraphError::Corrupted { region, detail } => {
                assert!(region.contains("slot 0"), "{region}");
                assert!(detail.contains("crc mismatch"), "{detail}");
            }
            other => panic!("expected Corrupted, got {other}"),
        }
    }

    #[test]
    fn torn_journal_line_is_detected_on_reopen() {
        let p = pool();
        let t = ClientTable::create_or_open(&p, 0).unwrap();
        t.begin(7, 1, 0).unwrap();
        t.advance(1, 1);
        drop(t);
        let (base, _) = ClientTable::region(&p).unwrap();
        p.inject_torn_line(base + JOURNAL_OFF, 0xBEEF);
        assert!(matches!(
            ClientTable::create_or_open(&p, 1),
            Err(GraphError::Corrupted { .. })
        ));
    }

    #[test]
    fn header_corruption_is_detected_on_reopen() {
        let p = pool();
        drop(ClientTable::create_or_open(&p, 0).unwrap());
        let (base, _) = ClientTable::region(&p).unwrap();
        p.inject_bit_flip(base + 8, 3); // capacity word
        assert!(matches!(
            ClientTable::create_or_open(&p, 0),
            Err(GraphError::Corrupted { region, .. }) if region.contains("header")
        ));
    }

    #[test]
    fn region_covers_header_journal_and_slots() {
        let p = pool();
        drop(ClientTable::create_or_open(&p, 0).unwrap());
        let (base, len) = ClientTable::region(&p).unwrap();
        assert_eq!(len, SLOTS_OFF + DEFAULT_CAPACITY * SLOT_BYTES);
        assert!(base % 64 == 0);
        // A pool without a table reports no region.
        assert!(ClientTable::region(&pool()).is_none());
    }

    #[test]
    fn watermarks_min_across_shards() {
        let pools = [pool(), pool()];
        for (i, p) in pools.iter().enumerate() {
            let t = ClientTable::create_or_open(p, 0).unwrap();
            t.begin(7, 1, 0).unwrap();
            t.commit(7, 1);
            if i == 0 {
                t.begin(7, 2, 0).unwrap();
                t.commit(7, 2); // shard 0 is ahead
            }
        }
        let w = ClientWatermarks::peek_all(pools.as_ref());
        assert_eq!(w.num_shards(), 2);
        assert_eq!(w.committed(7), Some(1)); // min of {2, 1}
        assert_eq!(w.committed(9), None);
        assert_eq!(w.clients(), vec![7]);
    }
}
