//! Configuration of the sharded ingest engine.

/// Tuning knobs for [`crate::ShardedGraph`] + [`crate::IngestPipeline`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (backend instances and ingest workers).
    pub num_shards: usize,
    /// Capacity of each per-shard queue, in *batches*.  When a queue is
    /// full, [`crate::IngestPipeline::submit`] blocks (backpressure) until
    /// the shard's worker drains a batch.
    pub queue_capacity: usize,
    /// Preferred number of edges per submitted batch.  Purely a hint for
    /// producers slicing a stream (see `workloads::EdgeList::batches`); the
    /// pipeline accepts batches of any size.
    pub batch_size: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            num_shards: 4,
            queue_capacity: 64,
            batch_size: 1024,
        }
    }
}

impl ShardedConfig {
    /// A configuration with the given shard count and default queueing.
    pub fn with_shards(num_shards: usize) -> Self {
        ShardedConfig {
            num_shards,
            ..ShardedConfig::default()
        }
    }

    /// A tiny configuration for unit tests: two shards, short queues so
    /// backpressure paths actually trigger.
    pub fn small_test() -> Self {
        ShardedConfig {
            num_shards: 2,
            queue_capacity: 4,
            batch_size: 64,
        }
    }

    /// Panic on nonsensical settings (zero shards / queue slots / batch).
    pub fn validate(&self) {
        assert!(self.num_shards > 0, "num_shards must be at least 1");
        assert!(self.queue_capacity > 0, "queue_capacity must be at least 1");
        assert!(self.batch_size > 0, "batch_size must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ShardedConfig::default().validate();
        ShardedConfig::small_test().validate();
        ShardedConfig::with_shards(8).validate();
    }

    #[test]
    #[should_panic(expected = "num_shards")]
    fn zero_shards_rejected() {
        ShardedConfig {
            num_shards: 0,
            ..ShardedConfig::default()
        }
        .validate();
    }
}
