//! Configuration of the sharded ingest engine.

/// Tuning knobs for [`crate::ShardedGraph`] + [`crate::IngestPipeline`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (backend instances and ingest workers).
    pub num_shards: usize,
    /// Capacity of each per-shard queue, in *batches*.  When a queue is
    /// full, [`crate::IngestPipeline::submit`] blocks (backpressure) until
    /// the shard's worker drains a batch.
    pub queue_capacity: usize,
    /// Preferred number of edges per submitted batch.  Purely a hint for
    /// producers slicing a stream (see `workloads::EdgeList::batches`); the
    /// pipeline accepts batches of any size.
    pub batch_size: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            num_shards: 4,
            queue_capacity: 64,
            batch_size: 1024,
        }
    }
}

impl ShardedConfig {
    /// Start building a configuration from the defaults; settings are
    /// validated when [`ShardedConfigBuilder::build`] runs, so an invalid
    /// combination can never leak into a running pipeline:
    ///
    /// ```
    /// use sharded::ShardedConfig;
    /// let cfg = ShardedConfig::builder()
    ///     .shards(8)
    ///     .queue_capacity(32)
    ///     .batch_size(2048)
    ///     .build();
    /// assert_eq!(cfg.num_shards, 8);
    /// ```
    pub fn builder() -> ShardedConfigBuilder {
        ShardedConfigBuilder {
            cfg: ShardedConfig::default(),
        }
    }

    /// A configuration with the given shard count and default queueing.
    pub fn with_shards(num_shards: usize) -> Self {
        ShardedConfig {
            num_shards,
            ..ShardedConfig::default()
        }
    }

    /// A tiny configuration for unit tests: two shards, short queues so
    /// backpressure paths actually trigger.
    pub fn small_test() -> Self {
        ShardedConfig {
            num_shards: 2,
            queue_capacity: 4,
            batch_size: 64,
        }
    }

    /// Panic on nonsensical settings (zero shards / queue slots / batch).
    pub fn validate(&self) {
        assert!(self.num_shards > 0, "num_shards must be at least 1");
        assert!(self.queue_capacity > 0, "queue_capacity must be at least 1");
        assert!(self.batch_size > 0, "batch_size must be at least 1");
    }
}

/// Builder for [`ShardedConfig`] (see [`ShardedConfig::builder`]).
///
/// Each setter overrides one default; `build` runs
/// [`ShardedConfig::validate`] so nonsensical settings fail at
/// construction time with a clear message instead of misbehaving later.
#[derive(Debug, Clone)]
pub struct ShardedConfigBuilder {
    cfg: ShardedConfig,
}

impl ShardedConfigBuilder {
    /// Number of shards (backend instances and ingest workers).
    pub fn shards(mut self, num_shards: usize) -> Self {
        self.cfg.num_shards = num_shards;
        self
    }

    /// Capacity of each per-shard queue, in batches.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.cfg.queue_capacity = queue_capacity;
        self
    }

    /// Preferred number of operations per submitted batch.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.cfg.batch_size = batch_size;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Panics
    /// On nonsensical settings (zero shards, queue slots or batch size).
    pub fn build(self) -> ShardedConfig {
        self.cfg.validate();
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = ShardedConfig::builder()
            .shards(8)
            .queue_capacity(16)
            .batch_size(512)
            .build();
        assert_eq!(cfg.num_shards, 8);
        assert_eq!(cfg.queue_capacity, 16);
        assert_eq!(cfg.batch_size, 512);
        // Untouched settings keep their defaults.
        let cfg = ShardedConfig::builder().shards(3).build();
        assert_eq!(cfg.queue_capacity, ShardedConfig::default().queue_capacity);
    }

    #[test]
    #[should_panic(expected = "queue_capacity")]
    fn builder_rejects_invalid_settings_at_build_time() {
        let _ = ShardedConfig::builder().queue_capacity(0).build();
    }

    #[test]
    fn defaults_validate() {
        ShardedConfig::default().validate();
        ShardedConfig::small_test().validate();
        ShardedConfig::with_shards(8).validate();
    }

    #[test]
    #[should_panic(expected = "num_shards")]
    fn zero_shards_rejected() {
        ShardedConfig {
            num_shards: 0,
            ..ShardedConfig::default()
        }
        .validate();
    }
}
