//! A bounded lock-free multi-producer multi-consumer queue.
//!
//! This is Dmitry Vyukov's classic bounded MPMC queue: a power-of-two ring
//! of slots, each carrying a sequence number that encodes whether the slot
//! is ready for a producer or a consumer.  Producers and consumers claim
//! positions with a single CAS each and never block one another — exactly
//! what the ingest pipeline needs between submitter threads and the
//! per-shard drain workers.  `push` fails (rather than waiting) when the
//! ring is full; the pipeline turns that into backpressure.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Encodes slot state relative to ring positions: `seq == pos` means
    /// free for the producer claiming `pos`; `seq == pos + 1` means filled
    /// for the consumer claiming `pos`.
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC queue (see the [module docs](self)).
pub struct BatchQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// SAFETY: slots are handed off between threads through the sequence-number
// protocol (Acquire/Release pairs below); a value is only ever accessed by
// the single thread that claimed its position.
unsafe impl<T: Send> Send for BatchQueue<T> {}
unsafe impl<T: Send> Sync for BatchQueue<T> {}

impl<T> BatchQueue<T> {
    /// Create a queue holding at least `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BatchQueue {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued items (racy, for stats only).
    pub fn len(&self) -> usize {
        self.enqueue_pos
            .load(Ordering::Relaxed)
            .saturating_sub(self.dequeue_pos.load(Ordering::Relaxed))
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Try to enqueue `value`.  Returns `Err(value)` when the ring is full
    /// so the caller can retry (backpressure) without losing the item.
    ///
    /// On success, returns the item's **absolute queue position** (0 for
    /// the first item ever pushed, 1 for the second, ...).  With a single
    /// consumer, items are dequeued in exactly this order, so position
    /// `p` being consumed implies positions `0..p` were consumed too —
    /// the property completion tickets are built on.
    pub fn push(&self, value: T) -> Result<usize, T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            if seq == pos {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS above made this thread the unique
                        // owner of slot `pos`; no other producer can claim it
                        // and consumers wait for the Release store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(pos);
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq.wrapping_sub(pos) as isize > 0 {
                // Another producer got here first; reload and retry.
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            } else {
                // seq < pos: the consumer for this slot one lap behind has
                // not freed it yet — the ring is full.
                return Err(value);
            }
        }
    }

    /// Try to dequeue an item.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if seq == expected {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique owner
                        // of the filled slot; the producer's Release store
                        // to `sequence` published the value.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.sequence
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq.wrapping_sub(expected) as isize > 0 {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            } else {
                // seq < pos + 1: slot not yet filled — queue empty.
                return None;
            }
        }
    }
}

impl<T> Drop for BatchQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = BatchQueue::with_capacity(8);
        for i in 0..8 {
            assert_eq!(q.push(i).unwrap(), i, "push reports the queue position");
        }
        assert!(q.push(99).is_err(), "ring must report full");
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn positions_are_absolute_across_wraps() {
        let q = BatchQueue::with_capacity(2);
        for expect in 0..5usize {
            assert_eq!(q.push(0u8).unwrap(), expect);
            q.pop().unwrap();
        }
    }

    #[test]
    fn capacity_rounds_up() {
        let q: BatchQueue<u8> = BatchQueue::with_capacity(5);
        assert_eq!(q.capacity(), 8);
        let q: BatchQueue<u8> = BatchQueue::with_capacity(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn drops_remaining_items() {
        let counter = Arc::new(AtomicU64::new(0));
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let q = BatchQueue::with_capacity(4);
            q.push(Probe(Arc::clone(&counter))).ok().unwrap();
            q.push(Probe(Arc::clone(&counter))).ok().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 10_000;
        let q = Arc::new(BatchQueue::with_capacity(64));
        let sum = Arc::new(AtomicU64::new(0));
        let received = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.push(v) {
                                Ok(_pos) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                let received = Arc::clone(&received);
                scope.spawn(move || loop {
                    match q.pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            received.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if received.load(Ordering::Relaxed) == PRODUCERS * PER_PRODUCER {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(received.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
