//! The partitioned graph: N backend instances behind one `DynamicGraph`.

use crate::client_table::{ClientTable, ClientWatermarks};
use crate::partition::Partitioner;
use crate::view::{OwnedShardedView, ShardedView};
use dgap::{
    Dgap, DgapConfig, DynamicGraph, FrozenView, GraphError, GraphResult, OwnedSnapshotSource,
    RecoveryKind, SnapshotSource, VertexId,
};
use pmem::{PmemConfig, PmemPool};
use std::sync::Arc;

/// How a [`ShardedGraph::open_dgap`] call brought each shard back: the
/// per-shard [`RecoveryKind`]s in shard order plus the aggregate numbers a
/// restarting service wants to log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedRecovery {
    per_shard: Vec<RecoveryKind>,
    /// Per-client committed op watermarks recovered from every shard's
    /// durable [`crate::ClientTable`] (empty maps for shards without one,
    /// and for quarantined shards, whose tables cannot be trusted).
    client_watermarks: ClientWatermarks,
    /// Shards whose persistent image failed integrity verification, with
    /// the error that condemned each; in shard-index order.
    quarantined: Vec<(usize, String)>,
}

impl ShardedRecovery {
    /// Number of shards that were opened.
    pub fn num_shards(&self) -> usize {
        self.per_shard.len()
    }

    /// The restart path shard `index` took.
    pub fn shard(&self, index: usize) -> RecoveryKind {
        self.per_shard[index]
    }

    /// Per-shard restart paths, in shard order.
    pub fn per_shard(&self) -> &[RecoveryKind] {
        &self.per_shard
    }

    /// Number of shards that came back through crash recovery (rather than
    /// a graceful-shutdown backup reload).
    pub fn crashed_shards(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|k| matches!(k, RecoveryKind::CrashRecovery { .. }))
            .count()
    }

    /// `true` when every shard restarted from a graceful-shutdown backup
    /// and none was quarantined.
    pub fn all_normal(&self) -> bool {
        self.crashed_shards() == 0 && self.quarantined.is_empty()
    }

    /// Indices of shards that failed integrity verification and were
    /// replaced by empty placeholders (shard-index order).
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.quarantined.iter().map(|&(s, _)| s).collect()
    }

    /// Whether shard `index` was quarantined.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined.iter().any(|&(s, _)| s == index)
    }

    /// `true` when at least one shard was quarantined — the graph came up
    /// in degraded mode and the service layer must annotate every answer.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// The integrity errors that condemned each quarantined shard, as
    /// `(shard, message)` pairs in shard-index order.
    pub fn quarantine_reasons(&self) -> &[(usize, String)] {
        &self.quarantined
    }

    /// The per-client committed-op watermarks the shard pools carried —
    /// what a restarted service needs to answer "did my operation commit?"
    /// for every client that was in flight at the crash.
    pub fn client_watermarks(&self) -> &ClientWatermarks {
        &self.client_watermarks
    }

    /// Total interrupted rebalances rolled back across all shards.
    pub fn rolled_back_rebalances(&self) -> usize {
        self.per_shard
            .iter()
            .map(|k| match k {
                RecoveryKind::CrashRecovery {
                    rolled_back_rebalances,
                } => *rolled_back_rebalances,
                RecoveryKind::NormalRestart => 0,
            })
            .sum()
    }
}

/// A graph hash-partitioned across `N` independent backend instances.
///
/// Every edge is stored in the shard owning its *source* vertex, so a
/// vertex's entire adjacency list lives in one shard and insertion order per
/// vertex is preserved.  Each shard keeps vertices under their **global**
/// ids: backends in this workspace pre-size their vertex range and grow it
/// on demand, which keeps the read path translation-free at the cost of
/// per-shard vertex metadata proportional to the full vertex set (an
/// accepted trade-off at the current scale; a local-id compaction layer is
/// a recorded follow-on).
///
/// `ShardedGraph` itself implements [`DynamicGraph`], so it can be used
/// anywhere a single backend can — including being driven directly by
/// multiple writer threads without the [`crate::IngestPipeline`].
pub struct ShardedGraph<G> {
    shards: Vec<Arc<G>>,
    partitioner: Partitioner,
}

impl<G: DynamicGraph> ShardedGraph<G> {
    /// Build a graph of `num_shards` shards, constructing each backend with
    /// `factory(shard_index)`.
    pub fn new(
        num_shards: usize,
        mut factory: impl FnMut(usize) -> GraphResult<G>,
    ) -> GraphResult<Self> {
        let partitioner = Partitioner::new(num_shards);
        let mut shards = Vec::with_capacity(num_shards);
        for i in 0..num_shards {
            shards.push(Arc::new(factory(i)?));
        }
        Ok(ShardedGraph {
            shards,
            partitioner,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard at `index`.
    pub fn shard(&self, index: usize) -> &G {
        &self.shards[index]
    }

    /// Shared handle to the shard at `index` (used by pipeline workers).
    pub(crate) fn shard_arc(&self, index: usize) -> Arc<G> {
        Arc::clone(&self.shards[index])
    }

    /// The vertex partitioner (deterministic; the read path reuses it).
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The shard owning vertex `v`.
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.partitioner.shard_of(v)
    }

    /// Per-shard edge-record counts, in shard order (skew diagnostics).
    pub fn shard_edge_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.num_edges()).collect()
    }
}

impl ShardedGraph<Dgap> {
    /// Build a sharded DGAP: each shard gets its own [`PmemPool`] (built
    /// from `pool_config(shard_index)`) and its own [`Dgap`] instance sized
    /// for `1/num_shards` of `num_edges`.
    pub fn create_dgap(
        num_shards: usize,
        num_vertices: usize,
        num_edges: usize,
        pool_config: impl Fn(usize) -> PmemConfig,
    ) -> GraphResult<Self> {
        let per_shard_edges = num_edges.div_ceil(num_shards.max(1));
        ShardedGraph::new(num_shards, |shard| {
            let pool = Arc::new(PmemPool::new(pool_config(shard)));
            Dgap::create(pool, DgapConfig::for_graph(num_vertices, per_shard_edges))
        })
    }

    /// A sharded DGAP sized for unit tests (small per-shard pools).
    pub fn create_dgap_small_test(num_shards: usize) -> GraphResult<Self> {
        ShardedGraph::new(num_shards, |_| {
            let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
            Dgap::create(pool, DgapConfig::small_test())
        })
    }

    /// Re-open a sharded DGAP over pools that already contain one shard
    /// each — the counterpart to [`ShardedGraph::create_dgap`] after a
    /// restart or a crash.  `pools[i]` becomes shard `i` (the partitioner
    /// is deterministic in the shard count, so the original order must be
    /// kept); `config(i)` supplies each shard's [`DgapConfig`] the same way
    /// `create_dgap`'s factory did (structural parameters are read back
    /// from each pool's superblock — see [`Dgap::open`]).
    ///
    /// The per-shard `Dgap::open` calls — each itself a parallel scan on a
    /// crashed shard — **fan out concurrently** on the work-stealing pool
    /// via `scope`, so a multi-shard crash recovery costs roughly the
    /// slowest shard, not the sum.  Returns the graph together with a
    /// [`ShardedRecovery`] report of which restart path every shard took.
    ///
    /// ## Quarantine
    ///
    /// A shard whose image fails integrity verification — the backend
    /// refuses the pool with [`GraphError::Corrupted`], or the shard's
    /// durable [`crate::ClientTable`] has a bad checksum — does **not**
    /// fail the whole open.  The shard is *quarantined*: an empty
    /// placeholder instance (on a fresh throwaway pool) takes its slot so
    /// the partitioner geometry is preserved, the damaged pool is left
    /// untouched for offline repair, and the returned [`ShardedRecovery`]
    /// reports the shard under [`ShardedRecovery::quarantined_shards`].
    /// Callers that serve traffic **must** consult that report: reads
    /// touching a quarantined shard's vertices must be annotated (or
    /// rejected) rather than answered from the empty placeholder — the
    /// service layer enforces exactly that.  Any non-integrity error
    /// (configuration mismatch, empty pool set) still fails the open.
    pub fn open_dgap(
        pools: Vec<Arc<PmemPool>>,
        config: impl Fn(usize) -> DgapConfig + Sync,
    ) -> GraphResult<(Self, ShardedRecovery)> {
        if pools.is_empty() {
            return Err(GraphError::Other(
                "open_dgap needs at least one shard pool".into(),
            ));
        }
        let num_shards = pools.len();
        let mut slots: Vec<Option<GraphResult<(Dgap, RecoveryKind)>>> =
            (0..num_shards).map(|_| None).collect();
        // Per-shard client-table watermarks (read-only peek: crash
        // resolution of an interrupted operation happens when the tables
        // are properly opened, in the pipeline that serves post-recovery
        // traffic) and integrity verdicts, gathered before each pool moves
        // into its shard's open.
        type TablePeek = (GraphResult<()>, std::collections::HashMap<u64, u64>);
        let mut tables: Vec<Option<TablePeek>> = (0..num_shards).map(|_| None).collect();
        rayon::scope(|s| {
            for (shard, ((slot, table), pool)) in slots
                .iter_mut()
                .zip(tables.iter_mut())
                .zip(pools)
                .enumerate()
            {
                let config = &config;
                s.spawn(move |_| {
                    *table = Some((ClientTable::verify_pool(&pool), ClientTable::peek(&pool)));
                    *slot = Some(Dgap::open(pool, config(shard)));
                });
            }
        });
        let mut shards = Vec::with_capacity(num_shards);
        let mut per_shard = Vec::with_capacity(num_shards);
        let mut watermarks = Vec::with_capacity(num_shards);
        let mut quarantined = Vec::new();
        let mut quarantine = |shard: usize, err: GraphError| -> GraphResult<(Dgap, RecoveryKind)> {
            let pool = Arc::new(PmemPool::new(PmemConfig::small_test()));
            pool.set_label(format!("quarantine placeholder (shard {shard})"));
            let placeholder = Dgap::create(pool, DgapConfig::small_test())?;
            quarantined.push((shard, err.to_string()));
            Ok((placeholder, RecoveryKind::NormalRestart))
        };
        for (shard, (slot, table)) in slots.into_iter().zip(tables).enumerate() {
            let opened = slot.expect("scope completed every shard open");
            let (table_ok, marks) = table.expect("scope verified every shard table");
            let (graph, kind) = match (opened, table_ok) {
                (Ok(pair), Ok(())) => {
                    watermarks.push(marks);
                    pair
                }
                // A corrupt client table condemns the shard even when the
                // graph image itself opened cleanly: its exactly-once
                // watermarks cannot be trusted.
                (Ok(_), Err(err)) | (Err(err @ GraphError::Corrupted { .. }), _) => {
                    watermarks.push(Default::default());
                    quarantine(shard, err)?
                }
                (Err(other), _) => return Err(other),
            };
            shards.push(Arc::new(graph));
            per_shard.push(kind);
        }
        Ok((
            ShardedGraph {
                shards,
                partitioner: Partitioner::new(num_shards),
            },
            ShardedRecovery {
                per_shard,
                client_watermarks: ClientWatermarks::from_maps(watermarks),
                quarantined,
            },
        ))
    }
}

impl<G: DynamicGraph> DynamicGraph for ShardedGraph<G> {
    fn insert_vertex(&self, v: VertexId) -> GraphResult<()> {
        self.shards[self.partitioner.shard_of(v)].insert_vertex(v)
    }

    fn insert_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<()> {
        self.shards[self.partitioner.shard_of(src)].insert_edge(src, dst)
    }

    fn delete_edge(&self, src: VertexId, dst: VertexId) -> GraphResult<bool> {
        self.shards[self.partitioner.shard_of(src)].delete_edge(src, dst)
    }

    fn num_vertices(&self) -> usize {
        // Shards track the same global id space; the graph's extent is the
        // widest any shard has seen.
        self.shards
            .iter()
            .map(|s| s.num_vertices())
            .max()
            .unwrap_or(0)
    }

    fn num_edges(&self) -> usize {
        self.shards.iter().map(|s| s.num_edges()).sum()
    }

    fn flush(&self) {
        for shard in &self.shards {
            shard.flush();
        }
    }

    fn system_name(&self) -> &'static str {
        "Sharded"
    }
}

impl<G: DynamicGraph + SnapshotSource> SnapshotSource for ShardedGraph<G> {
    type View<'a>
        = ShardedView<'a, G>
    where
        Self: 'a;

    fn consistent_view(&self) -> ShardedView<'_, G> {
        ShardedView::new(
            self.shards.iter().map(|s| s.consistent_view()).collect(),
            self.partitioner,
        )
    }
}

impl<G: DynamicGraph + SnapshotSource> OwnedSnapshotSource for ShardedGraph<G> {
    type OwnedView = OwnedShardedView;

    /// Materialise each shard's consistent snapshot into an owned
    /// [`FrozenView`] and compose them.  The per-shard captures run
    /// **concurrently** on the work-stealing pool (each capture is itself
    /// parallel inside); like the borrowed composite, the result is
    /// per-shard consistent rather than a single atomic cut.
    fn owned_view(&self) -> OwnedShardedView {
        self.owned_view_reusing(vec![None; self.shards.len()])
    }
}

impl<G: DynamicGraph + SnapshotSource> ShardedGraph<G> {
    /// An owned snapshot behind an `Arc`, ready to outlive this call and be
    /// shared across request-serving threads (the service layer's epoch
    /// cache holds exactly this).  Costs one pass over the visible graph
    /// (`O(V + E)`); amortise it by caching until the write watermark
    /// advances.
    pub fn consistent_view_arc(&self) -> Arc<OwnedShardedView> {
        Arc::new(self.owned_view())
    }

    /// The incremental composite capture: shard `i` is re-materialised
    /// only when `reuse[i]` is `None`; a `Some` snapshot (typically the
    /// previous epoch's, when that shard's write watermark did not move) is
    /// carried over by `Arc` — no copy, no scan.  All shards that *do*
    /// need re-capturing are captured concurrently on the work-stealing
    /// pool.
    ///
    /// The caller owns the staleness argument (per-shard watermarks live in
    /// the ingest pipeline, not the graph): reuse a shard only when nothing
    /// was applied to it since its snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics when `reuse.len() != self.num_shards()`.
    pub fn owned_view_reusing(&self, reuse: Vec<Option<Arc<FrozenView>>>) -> OwnedShardedView {
        use rayon::prelude::*;
        assert_eq!(
            reuse.len(),
            self.shards.len(),
            "one reuse slot per shard required"
        );
        let shards = &self.shards;
        let views: Vec<Arc<FrozenView>> = reuse
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(i, slot)| match slot {
                Some(kept) => kept,
                None => Arc::new(FrozenView::capture(&shards[i].consistent_view())),
            })
            .collect();
        OwnedShardedView::new(views, self.partitioner)
    }
}

/// The partitioned engine instantiated with the paper's system: one DGAP
/// (and one persistent pool) per shard.
pub type ShardedDgap = ShardedGraph<Dgap>;

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::{GraphView, ReferenceGraph};

    #[test]
    fn routes_edges_by_source_shard() {
        let g = ShardedGraph::create_dgap_small_test(3).unwrap();
        for v in 0..30u64 {
            g.insert_edge(v, (v + 1) % 30).unwrap();
        }
        assert_eq!(g.num_edges(), 30);
        let by_shard = g.shard_edge_counts();
        assert_eq!(by_shard.iter().sum::<usize>(), 30);
        for v in 0..30u64 {
            let owner = g.shard_of(v);
            assert_eq!(g.shard(owner).degree(v), 1, "vertex {v}");
        }
    }

    #[test]
    fn composite_view_matches_reference() {
        let g = ShardedGraph::create_dgap_small_test(4).unwrap();
        let mut oracle = ReferenceGraph::new(16);
        for v in 0..16u64 {
            for d in 0..(v % 5) {
                g.insert_edge(v, d).unwrap();
                oracle.add_edge(v, d);
            }
        }
        let view = g.consistent_view();
        assert_eq!(view.num_edges(), oracle.num_edges());
        for v in 0..16u64 {
            assert_eq!(view.neighbors(v), oracle.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn owned_view_outlives_the_borrow_and_resolves_deletes() {
        let g = ShardedGraph::create_dgap_small_test(2).unwrap();
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(0, 2).unwrap();
        g.insert_edge(1, 0).unwrap();
        g.delete_edge(0, 1).unwrap();
        let owned = g.consistent_view_arc();
        // The snapshot is isolated from later writes...
        g.insert_edge(0, 9).unwrap();
        assert_eq!(owned.neighbors(0), vec![2]);
        // ...and owned: it keeps answering from another thread with no
        // borrow of the graph.
        let handle = {
            let owned = Arc::clone(&owned);
            std::thread::spawn(move || (owned.degree(0), owned.num_edges()))
        };
        // Owned snapshots count *visible* edges: (0->1, tombstoned) is
        // resolved away, leaving 0->2 and 1->0.
        assert_eq!(handle.join().unwrap(), (1, 2));
        assert_eq!(owned.num_shards(), 2);
        assert_eq!(owned.neighbor_slice(1), &[0]);
    }

    #[test]
    fn reusing_capture_shares_kept_shards_and_recaptures_the_rest() {
        let g = ShardedGraph::create_dgap_small_test(2).unwrap();
        for v in 0..32u64 {
            g.insert_edge(v, (v + 1) % 32).unwrap();
        }
        let first = g.owned_view();
        // Keep shard 0's snapshot, force a fresh capture of shard 1.
        let second = g.owned_view_reusing(vec![Some(first.shard_view_arc(0)), None]);
        assert!(Arc::ptr_eq(
            &first.shard_view_arc(0),
            &second.shard_view_arc(0)
        ));
        assert!(!Arc::ptr_eq(
            &first.shard_view_arc(1),
            &second.shard_view_arc(1)
        ));
        // Nothing changed in between, so the composites agree.
        assert_eq!(second.num_edges(), first.num_edges());
        for v in 0..32u64 {
            assert_eq!(second.neighbors(v), first.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    #[should_panic(expected = "one reuse slot per shard")]
    fn reusing_capture_rejects_wrong_slot_count() {
        let g = ShardedGraph::create_dgap_small_test(2).unwrap();
        let _ = g.owned_view_reusing(vec![None]);
    }

    /// Build a sharded DGAP on crash-tracking pools, ingest, and hand back
    /// the graph together with its pool handles (which outlive the graph).
    fn crashed_pools(num_shards: usize, edges: &[(u64, u64)]) -> Vec<Arc<pmem::PmemPool>> {
        let graph = ShardedGraph::new(num_shards, |_| {
            let pool = Arc::new(pmem::PmemPool::new(PmemConfig::small_test()));
            dgap::Dgap::create(pool, DgapConfig::small_test())
        })
        .unwrap();
        for &(s, d) in edges {
            graph.insert_edge(s, d).unwrap();
        }
        let pools: Vec<Arc<pmem::PmemPool>> = (0..num_shards)
            .map(|i| Arc::clone(graph.shard(i).pool()))
            .collect();
        drop(graph); // no shutdown: the next open takes the crash path
        for pool in &pools {
            pool.simulate_crash();
        }
        pools
    }

    #[test]
    fn open_dgap_recovers_every_shard_after_a_crash() {
        let edges: Vec<(u64, u64)> = (0..600u64).map(|i| (i % 48, (i * 7) % 48)).collect();
        for shards in [1usize, 2, 4] {
            let pools = crashed_pools(shards, &edges);
            let (reopened, recovery) =
                ShardedGraph::open_dgap(pools, |_| DgapConfig::small_test()).unwrap();
            assert_eq!(recovery.num_shards(), shards);
            assert_eq!(recovery.crashed_shards(), shards, "{shards} shards");
            assert!(!recovery.all_normal());
            let mut oracle = ReferenceGraph::new(48);
            for &(s, d) in &edges {
                oracle.add_edge(s, d);
            }
            let view = reopened.consistent_view();
            for v in 0..48u64 {
                assert_eq!(view.neighbors(v), oracle.neighbors(v), "vertex {v}");
            }
        }
    }

    #[test]
    fn open_dgap_reports_normal_restart_after_shutdown() {
        let graph = ShardedGraph::new(2, |_| {
            let pool = Arc::new(pmem::PmemPool::new(PmemConfig::small_test()));
            dgap::Dgap::create(pool, DgapConfig::small_test())
        })
        .unwrap();
        graph.insert_edge(1, 2).unwrap();
        graph.insert_edge(2, 1).unwrap();
        let pools: Vec<_> = (0..2).map(|i| Arc::clone(graph.shard(i).pool())).collect();
        for i in 0..2 {
            graph.shard(i).shutdown().unwrap();
        }
        drop(graph);
        for pool in &pools {
            pool.simulate_crash();
        }
        let (reopened, recovery) =
            ShardedGraph::open_dgap(pools, |_| DgapConfig::small_test()).unwrap();
        assert!(recovery.all_normal());
        assert_eq!(recovery.rolled_back_rebalances(), 0);
        assert_eq!(reopened.consistent_view().neighbors(1), vec![2]);
    }

    #[test]
    fn open_dgap_recovers_client_watermarks() {
        use crate::client_table::ClientTable;
        let edges: Vec<(u64, u64)> = (0..40u64).map(|i| (i % 8, (i + 3) % 8)).collect();
        let pools = crashed_pools_with(2, &edges, |pool| {
            let t = ClientTable::create_or_open(pool, 0).unwrap();
            t.begin(7, 4, 0).unwrap();
            t.commit(7, 4);
        });
        let (_reopened, recovery) =
            ShardedGraph::open_dgap(pools, |_| DgapConfig::small_test()).unwrap();
        let marks = recovery.client_watermarks();
        assert_eq!(marks.num_shards(), 2);
        assert_eq!(marks.committed(7), Some(4));
        assert_eq!(marks.committed(8), None);
        assert_eq!(marks.clients(), vec![7]);
    }

    /// Like [`crashed_pools`] but runs `prep` on every pool before the crash.
    fn crashed_pools_with(
        num_shards: usize,
        edges: &[(u64, u64)],
        prep: impl Fn(&Arc<pmem::PmemPool>),
    ) -> Vec<Arc<pmem::PmemPool>> {
        let graph = ShardedGraph::new(num_shards, |_| {
            let pool = Arc::new(pmem::PmemPool::new(PmemConfig::small_test()));
            dgap::Dgap::create(pool, DgapConfig::small_test())
        })
        .unwrap();
        for &(s, d) in edges {
            graph.insert_edge(s, d).unwrap();
        }
        let pools: Vec<Arc<pmem::PmemPool>> = (0..num_shards)
            .map(|i| Arc::clone(graph.shard(i).pool()))
            .collect();
        for pool in &pools {
            prep(pool);
        }
        drop(graph);
        for pool in &pools {
            pool.simulate_crash();
        }
        pools
    }

    #[test]
    fn corrupt_shard_is_quarantined_and_the_rest_recover() {
        let edges: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 32, (i * 5) % 32)).collect();
        let pools = crashed_pools(2, &edges);
        // Tear the pool header of shard 1: its seal no longer matches, so
        // the backend must refuse the image.
        pools[1].inject_bit_flip(16, 2);
        let (reopened, recovery) =
            ShardedGraph::open_dgap(pools, |_| DgapConfig::small_test()).unwrap();
        assert!(recovery.is_degraded());
        assert!(!recovery.all_normal());
        assert_eq!(recovery.quarantined_shards(), vec![1]);
        assert!(recovery.is_quarantined(1) && !recovery.is_quarantined(0));
        assert!(recovery.quarantine_reasons()[0].1.contains("crc"));
        // The surviving shard still answers with full fidelity.
        let mut oracle = ReferenceGraph::new(32);
        for &(s, d) in &edges {
            oracle.add_edge(s, d);
        }
        let view = reopened.consistent_view();
        for v in (0..32u64).filter(|&v| reopened.shard_of(v) == 0) {
            assert_eq!(view.neighbors(v), oracle.neighbors(v), "vertex {v}");
        }
        // The quarantined shard's placeholder is empty — callers must
        // consult the recovery report before trusting it.
        for v in (0..32u64).filter(|&v| reopened.shard_of(v) == 1) {
            assert!(view.neighbors(v).is_empty(), "vertex {v}");
        }
    }

    #[test]
    fn corrupt_client_table_quarantines_its_shard() {
        use crate::client_table::ClientTable;
        let edges: Vec<(u64, u64)> = (0..40u64).map(|i| (i % 8, (i + 3) % 8)).collect();
        let pools = crashed_pools_with(2, &edges, |pool| {
            let t = ClientTable::create_or_open(pool, 0).unwrap();
            t.begin(7, 4, 0).unwrap();
            t.commit(7, 4);
        });
        let (table_base, _) = ClientTable::region(&pools[0]).unwrap();
        pools[0].inject_bit_flip(table_base + 128 + 8, 5); // slot 0, committed op
        let (_reopened, recovery) =
            ShardedGraph::open_dgap(pools, |_| DgapConfig::small_test()).unwrap();
        // The graph image was fine, but the shard's exactly-once state is
        // not trustworthy: quarantined, and its watermarks dropped.
        assert_eq!(recovery.quarantined_shards(), vec![0]);
        assert_eq!(recovery.client_watermarks().committed(7), Some(0));
    }

    #[test]
    fn open_dgap_rejects_an_empty_pool_set() {
        assert!(ShardedGraph::open_dgap(Vec::new(), |_| DgapConfig::small_test()).is_err());
    }

    #[test]
    fn single_shard_degenerates_to_plain_backend() {
        let g = ShardedGraph::create_dgap_small_test(1).unwrap();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(1, 3).unwrap();
        g.flush();
        assert_eq!(g.num_shards(), 1);
        assert_eq!(g.consistent_view().neighbors(1), vec![2, 3]);
    }
}
