//! [`UnifiedView`] — the cross-shard snapshot merged into one global CSR.
//!
//! [`crate::OwnedShardedView`] answers every read by hashing the vertex to
//! its owning shard and indexing into that shard's [`FrozenView`]: correct,
//! but an analytics kernel running over it pays the partitioner hash per
//! vertex *per pass* (PageRank alone does 40 passes over the vertex set)
//! and scatters its reads across `N` disjoint target arrays.  `UnifiedView`
//! pays the routing cost **once**: a parallel merge gathers every vertex's
//! resolved neighbour span out of its owning shard into a single flat
//! offsets-plus-targets CSR, after which reads are two array indexes — no
//! hash, no shard indirection, and (through [`dgap::CsrView`]) no per-edge
//! closure dispatch in the kernels.
//!
//! The merge is the same three-phase shape as the parallel
//! [`FrozenView::capture`]: a parallel per-vertex degree gather (vertex
//! chunks on the work-stealing pool, reading each shard's CSR arrays
//! directly), a serial prefix sum turning degrees into global offsets, and
//! a parallel span copy where every vertex memcpys its slice out of its
//! shard snapshot into its disjoint slice of the unified target array.
//!
//! Refreshes are **incremental**, mirroring
//! [`crate::ShardedGraph::owned_view_reusing`]: the per-shard
//! `Arc<FrozenView>`s the composite carries between epochs double as the
//! change signal.  A shard whose `Arc` is pointer-equal to the previous
//! epoch's did not advance, so its vertices' degrees and spans are taken
//! from the *previous unified CSR* (sequential block copies, never touching
//! the shard snapshot again); only shards that were actually re-captured
//! get their spans re-gathered.  [`UnifiedView::merged_shards`] reports how
//! many shards the build paid for — the service layer surfaces it as
//! `ServiceStats::unified_shard_merges`.
//!
//! Refreshes also produce a [`DeltaTracker`]: while the merge walks the
//! re-captured shards anyway, it compares every vertex's previous span
//! against its new one and records exactly which vertices' adjacency
//! actually changed between the two epochs (and whether any edge was
//! lost, which the incremental connected-components kernel cannot absorb).
//! Changed-shard granularity refined to changed-vertex granularity is what
//! lets `analytics::pagerank_incremental` / `analytics::cc_incremental`
//! re-relax O(delta) instead of O(V + E).  A re-captured shard whose CSR
//! is byte-identical to the one the previous epoch merged (e.g. a flush
//! with no net updates, or a burst that inserted and deleted the same
//! edge) is treated as unchanged outright, so a no-op epoch yields an
//! empty delta and zero re-relaxation.

use crate::view::OwnedShardedView;
use dgap::chunks::{ranges as chunk_ranges, SendPtr};
use dgap::{CsrView, FrozenView, GraphView, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone id source for [`UnifiedView::view_id`] — never recycled, so an
/// id uniquely names one build for the lifetime of the process and caches
/// keyed by it cannot alias a dropped view.
static NEXT_VIEW_ID: AtomicU64 = AtomicU64::new(1);

/// The set of vertices whose adjacency actually changed between the
/// previous epoch's unified CSR and this one, computed as a by-product of
/// [`UnifiedView::refreshed`]'s span re-merge.
///
/// Shard-level change signals (the carried `Arc<FrozenView>`s) tell the
/// merge *which shards* to re-gather; the tracker refines that to *which
/// vertices* differ by comparing each re-merged vertex's old span against
/// its new one.  The incremental analytics kernels seed from the previous
/// epoch's result and re-relax outward from exactly these vertices.
#[derive(Debug, Default, Clone)]
pub struct DeltaTracker {
    /// Changed vertex ids, ascending, deduplicated.
    changed: Vec<VertexId>,
    /// Whether any changed vertex *lost* an edge (its old span is not a
    /// sub-multiset of its new one).  Insert-only deltas can only merge
    /// connected components; a deletion forces the full CC recompute.
    has_deletions: bool,
}

impl DeltaTracker {
    /// The vertices whose adjacency changed, ascending and deduplicated.
    pub fn changed_vertices(&self) -> &[VertexId] {
        &self.changed
    }

    /// Number of changed vertices.
    pub fn len(&self) -> usize {
        self.changed.len()
    }

    /// `true` when the epoch was a no-op: no vertex's adjacency changed.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// Whether any changed vertex lost an edge relative to the previous
    /// epoch (deletions, not just inserts).
    pub fn has_deletions(&self) -> bool {
        self.has_deletions
    }
}

/// Whether `old` is **not** a sub-multiset of `new` — i.e. the vertex lost
/// at least one edge.  Neighbour spans preserve insertion order rather
/// than being sorted, so the check sorts copies and merge-walks; it only
/// runs for vertices whose spans already proved unequal.
fn lost_edges(old: &[VertexId], new: &[VertexId]) -> bool {
    if old.is_empty() {
        return false;
    }
    if new.len() < old.len() {
        return true;
    }
    let mut o = old.to_vec();
    let mut n = new.to_vec();
    o.sort_unstable();
    n.sort_unstable();
    let mut i = 0;
    for &x in &o {
        while i < n.len() && n[i] < x {
            i += 1;
        }
        if i >= n.len() || n[i] != x {
            return true;
        }
        i += 1;
    }
    false
}

/// An owned cross-shard snapshot materialised into **one global CSR**.
///
/// Implements [`GraphView`] (so anything generic keeps working) and
/// [`CsrView`] (so the `analytics` crate's zero-dispatch `*_csr` kernels
/// run over it).  Build one with [`UnifiedView::unify`]; refresh it
/// incrementally across epochs with [`UnifiedView::refreshed`].
pub struct UnifiedView {
    /// `offsets[v] .. offsets[v + 1]` spans `v`'s neighbours in `targets`.
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    /// `owners[v]` is the shard owning vertex `v` — the partitioner hash,
    /// paid once at the first merge and carried across refreshes.
    owners: Arc<Vec<u32>>,
    /// The per-shard snapshots this CSR was merged from.  Compared by
    /// `Arc::ptr_eq` against the next epoch's composite to decide which
    /// shards' spans must be re-gathered.
    sources: Vec<Arc<FrozenView>>,
    /// Which shards' spans were gathered fresh in this build (`false` =
    /// copied forward from the previous unified CSR).
    merged: Vec<bool>,
    /// Process-unique id of this build (see [`UnifiedView::view_id`]).
    id: u64,
    /// The [`UnifiedView::view_id`] of the previous epoch this build was
    /// incrementally refreshed from, when there was one.
    refreshed_from: Option<u64>,
    /// The changed-vertex delta vs that previous epoch (`Some` exactly
    /// when `refreshed_from` is).
    delta: Option<DeltaTracker>,
}

impl UnifiedView {
    /// Merge every shard of `owned` into a unified CSR (the full build:
    /// all shards pay the gather).
    pub fn unify(owned: &OwnedShardedView) -> UnifiedView {
        Self::build(owned, None)
    }

    /// Merge `owned` reusing everything that did not change since `self`
    /// was built: shards whose `Arc<FrozenView>` is pointer-equal to the
    /// one `self` merged keep their degrees and spans (copied forward from
    /// `self`'s arrays); only re-captured shards are re-gathered.
    ///
    /// Falls back to a full merge when the shard count changed or the
    /// vertex range shrank (neither happens in normal operation).
    pub fn refreshed(&self, owned: &OwnedShardedView) -> UnifiedView {
        Self::build(owned, Some(self))
    }

    fn build(owned: &OwnedShardedView, prev: Option<&UnifiedView>) -> UnifiedView {
        let n = owned.num_vertices();
        let shards = owned.num_shards();
        let sources: Vec<Arc<FrozenView>> = (0..shards).map(|s| owned.shard_view_arc(s)).collect();
        let prev = prev.filter(|p| p.sources.len() == shards && p.num_vertices() <= n);
        let merged: Vec<bool> = match prev {
            Some(p) => sources
                .iter()
                .zip(&p.sources)
                .map(|(new, old)| {
                    if Arc::ptr_eq(new, old) {
                        return false;
                    }
                    // A re-captured snapshot can still be byte-identical
                    // (a flush with no net updates, an insert cancelled by
                    // its delete).  Treating it as changed would re-gather
                    // every span *and* poison the delta with the whole
                    // shard; a slice compare (memcmp-fast) short-circuits
                    // the no-op epoch to an empty delta instead.
                    CsrView::offsets(&**new) != CsrView::offsets(&**old)
                        || CsrView::targets(&**new) != CsrView::targets(&**old)
                })
                .collect(),
            None => vec![true; shards],
        };
        let ranges = chunk_ranges(n);

        // The owner table: reused across refreshes (extended if the vertex
        // range grew), computed in parallel on the first merge — after
        // this, nothing on the read path ever hashes a vertex id again.
        let partitioner = owned.partitioner();
        let owners: Arc<Vec<u32>> = match prev {
            Some(p) if p.owners.len() == n => Arc::clone(&p.owners),
            Some(p) => {
                let mut grown = p.owners.as_ref().clone();
                grown.extend((grown.len()..n).map(|v| partitioner.shard_of(v as u64) as u32));
                Arc::new(grown)
            }
            None => {
                let mut table: Vec<u32> = Vec::with_capacity(n);
                let dst = SendPtr(table.as_mut_ptr());
                ranges.par_iter().for_each(|&(lo, hi)| {
                    for v in lo..hi {
                        // Chunks are disjoint: each index written once.
                        unsafe {
                            *dst.get().add(v) = partitioner.shard_of(v as u64) as u32;
                        }
                    }
                });
                unsafe { table.set_len(n) };
                Arc::new(table)
            }
        };

        // Phase 1 — parallel degree gather into offsets[v + 1]: changed
        // shards answer from their (re-captured) CSR arrays; unchanged
        // shards' degrees come straight off the previous unified offsets.
        let mut offsets: Vec<usize> = vec![0; n + 1];
        {
            let dst = SendPtr(offsets.as_mut_ptr());
            let owners = &owners;
            let sources = &sources;
            let merged = &merged;
            ranges.par_iter().for_each(|&(lo, hi)| {
                for v in lo..hi {
                    let s = owners[v] as usize;
                    let deg = match prev {
                        // A vertex past the previous epoch's range cannot
                        // have edges in an *unchanged* shard; the source
                        // gather below returns 0 for it either way.
                        Some(p) if !merged[s] && v + 1 < p.offsets.len() => {
                            p.offsets[v + 1] - p.offsets[v]
                        }
                        _ => sources[s].neighbor_slice(v as u64).len(),
                    };
                    unsafe { *dst.get().add(v + 1) = deg };
                }
            });
        }
        // Phase 2 — serial prefix sum (O(V), trivial next to the gathers).
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let total = offsets[n];

        // Phase 3 — parallel span copy into disjoint slices of the target
        // array: changed shards from their snapshot, unchanged shards
        // forwarded from the previous unified targets (already merged,
        // sequential reads).
        let mut targets: Vec<VertexId> = Vec::with_capacity(total);
        {
            let dst = SendPtr(targets.as_mut_ptr());
            let offsets = &offsets;
            let owners = &owners;
            let sources = &sources;
            let merged = &merged;
            ranges.par_iter().for_each(|&(lo, hi)| {
                for v in lo..hi {
                    let at = offsets[v];
                    let len = offsets[v + 1] - at;
                    if len == 0 {
                        continue;
                    }
                    let s = owners[v] as usize;
                    let src: &[VertexId] = match prev {
                        // len > 0 for an unchanged shard implies the span
                        // existed in the previous epoch (degrees above).
                        Some(p) if !merged[s] => &p.targets[p.offsets[v]..p.offsets[v] + len],
                        _ => sources[s].neighbor_slice(v as u64),
                    };
                    debug_assert_eq!(src.len(), len);
                    unsafe {
                        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.get().add(at), len);
                    }
                }
            });
        }
        unsafe { targets.set_len(total) };

        // Delta pass — refine changed-shard granularity to changed-vertex
        // granularity.  Only vertices owned by a re-merged shard (or past
        // the previous epoch's range) can differ; each compares its old
        // span against its new one.  Chunks are processed in order and
        // each scans ascending, so the flattened list is already sorted.
        let delta = prev.map(|p| {
            let offsets = &offsets;
            let targets = &targets;
            let owners = &owners;
            let merged = &merged;
            let per_chunk: Vec<(Vec<VertexId>, bool)> = ranges
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut changed = Vec::new();
                    let mut deletions = false;
                    for v in lo..hi {
                        let s = owners[v] as usize;
                        let in_prev = v + 1 < p.offsets.len();
                        if !merged[s] && in_prev {
                            continue;
                        }
                        let old: &[VertexId] = if in_prev {
                            &p.targets[p.offsets[v]..p.offsets[v + 1]]
                        } else {
                            &[]
                        };
                        let new = &targets[offsets[v]..offsets[v + 1]];
                        if old != new {
                            changed.push(v as VertexId);
                            deletions = deletions || lost_edges(old, new);
                        }
                    }
                    (changed, deletions)
                })
                .collect();
            let mut tracker = DeltaTracker::default();
            for (changed, deletions) in per_chunk {
                tracker.changed.extend(changed);
                tracker.has_deletions |= deletions;
            }
            tracker
        });

        UnifiedView {
            offsets,
            targets,
            owners,
            sources,
            merged,
            id: NEXT_VIEW_ID.fetch_add(1, Ordering::Relaxed),
            refreshed_from: prev.map(|p| p.id),
            delta,
        }
    }

    /// The neighbours of `v` as a borrowed slice.  Out-of-range ids — all
    /// the way up to `u64::MAX`, which untrusted service clients are free
    /// to send — have no neighbours.
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        let Some(next) = (v as usize).checked_add(1) else {
            return &[];
        };
        match (self.offsets.get(v as usize), self.offsets.get(next)) {
            (Some(&lo), Some(&hi)) => &self.targets[lo..hi],
            _ => &[],
        }
    }

    /// Number of shards this view was merged from.
    pub fn num_shards(&self) -> usize {
        self.sources.len()
    }

    /// How many shards' spans were gathered fresh in this build — the
    /// whole shard count for [`UnifiedView::unify`], only the changed
    /// shards for [`UnifiedView::refreshed`] (a single-shard write burst
    /// costs exactly one).
    pub fn merged_shards(&self) -> usize {
        self.merged.iter().filter(|&&m| m).count()
    }

    /// How many shards' spans were carried forward from the previous
    /// epoch's unified CSR without touching the shard snapshot.
    pub fn reused_shards(&self) -> usize {
        self.sources.len() - self.merged_shards()
    }

    /// Whether shard `s`'s spans were gathered fresh in this build.
    pub fn shard_was_merged(&self, s: usize) -> bool {
        self.merged[s]
    }

    /// Shared handle to the per-shard snapshot this view merged for shard
    /// `s` — the change signal the next [`UnifiedView::refreshed`] compares
    /// against (tests assert reuse with `Arc::ptr_eq` on exactly these).
    pub fn source_arc(&self, s: usize) -> Arc<FrozenView> {
        Arc::clone(&self.sources[s])
    }

    /// Process-unique id of this build.  Ids are never recycled, so a
    /// cache keyed by `view_id` cannot alias a dropped view — the
    /// service's `AnalyticsCache` uses exactly this to decide whether a
    /// previous epoch's rank/label vectors may seed an incremental kernel.
    pub fn view_id(&self) -> u64 {
        self.id
    }

    /// The [`UnifiedView::view_id`] of the previous epoch this build was
    /// incrementally refreshed from.  `None` for a full
    /// [`UnifiedView::unify`] build (or a refresh that fell back to a full
    /// merge because the shard count changed or the vertex range shrank) —
    /// in which case [`UnifiedView::delta`] is `None` too.
    pub fn refreshed_from(&self) -> Option<u64> {
        self.refreshed_from
    }

    /// The changed-vertex delta vs the epoch named by
    /// [`UnifiedView::refreshed_from`], when this build was an incremental
    /// refresh.
    pub fn delta(&self) -> Option<&DeltaTracker> {
        self.delta.as_ref()
    }
}

impl GraphView for UnifiedView {
    fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn num_edges(&self) -> usize {
        self.targets.len()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.neighbor_slice(v).len()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &d in self.neighbor_slice(v) {
            f(d);
        }
    }

    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.neighbor_slice(v).to_vec()
    }
}

impl CsrView for UnifiedView {
    fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        UnifiedView::neighbor_slice(self, v)
    }

    fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    fn targets(&self) -> &[VertexId] {
        &self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedGraph;
    use dgap::{DynamicGraph, OwnedSnapshotSource, ReferenceGraph};

    fn populated(shards: usize, n: u64) -> (ShardedGraph<dgap::Dgap>, ReferenceGraph) {
        let g = ShardedGraph::create_dgap_small_test(shards).unwrap();
        let mut oracle = ReferenceGraph::new(n as usize);
        for v in 0..n {
            for step in [1u64, 3] {
                let u = (v + step) % n;
                g.insert_edge(v, u).unwrap();
                oracle.add_edge(v, u);
            }
        }
        for v in (0..n).step_by(4) {
            let u = (v + 3) % n;
            assert!(g.delete_edge(v, u).unwrap());
            oracle.remove_edge(v, u);
        }
        (g, oracle)
    }

    #[test]
    fn unify_matches_the_composite_and_the_oracle() {
        for shards in [1usize, 2, 4] {
            let (g, oracle) = populated(shards, 48);
            let owned = g.owned_view();
            let unified = UnifiedView::unify(&owned);
            assert_eq!(unified.num_shards(), shards);
            assert_eq!(unified.merged_shards(), shards, "full build pays all");
            assert_eq!(unified.num_vertices(), owned.num_vertices());
            assert_eq!(unified.num_edges(), GraphView::num_edges(&owned));
            assert_eq!(CsrView::offsets(&unified).len(), unified.num_vertices() + 1);
            for v in 0..48u64 {
                assert_eq!(unified.neighbor_slice(v), &oracle.neighbors(v)[..], "v {v}");
                assert_eq!(unified.degree(v), oracle.degree(v));
            }
            assert!(unified.neighbor_slice(u64::MAX).is_empty());
            assert!(unified.neighbor_slice(1 << 40).is_empty());
        }
    }

    #[test]
    fn refresh_reuses_unchanged_shards_and_merges_the_rest() {
        let (g, mut oracle) = populated(2, 48);
        let owned = g.owned_view();
        let first = UnifiedView::unify(&owned);

        // A write burst confined to one shard, then an incremental
        // composite refresh that carries the other shard's Arc over.
        let touched = g.shard_of(0);
        g.insert_edge(0, 9).unwrap();
        oracle.add_edge(0, 9);
        let reuse = (0..2)
            .map(|s| (s != touched).then(|| owned.shard_view_arc(s)))
            .collect();
        let owned2 = g.owned_view_reusing(reuse);
        let second = first.refreshed(&owned2);

        assert_eq!(second.merged_shards(), 1, "one shard changed");
        assert_eq!(second.reused_shards(), 1);
        assert!(second.shard_was_merged(touched));
        assert!(!second.shard_was_merged(1 - touched));
        assert!(Arc::ptr_eq(
            &first.source_arc(1 - touched),
            &second.source_arc(1 - touched)
        ));
        assert!(!Arc::ptr_eq(
            &first.source_arc(touched),
            &second.source_arc(touched)
        ));
        // And the refreshed CSR is exactly what a full merge would build.
        let full = UnifiedView::unify(&owned2);
        assert_eq!(CsrView::offsets(&second), CsrView::offsets(&full));
        assert_eq!(CsrView::targets(&second), CsrView::targets(&full));
        for v in 0..48u64 {
            assert_eq!(second.neighbor_slice(v), &oracle.neighbors(v)[..], "v {v}");
        }
    }

    #[test]
    fn refresh_survives_a_grown_vertex_range() {
        let (g, _) = populated(2, 16);
        let first = UnifiedView::unify(&g.owned_view());
        let n_before = first.num_vertices();
        // Grow the graph past the previous range (the small-test backends
        // pre-allocate 64 vertices, so go well beyond that).
        g.insert_edge(100, 2).unwrap();
        let owned2 = g.owned_view();
        let second = first.refreshed(&owned2);
        assert!(second.num_vertices() > n_before);
        assert_eq!(second.neighbor_slice(100), &[2]);
        let full = UnifiedView::unify(&owned2);
        assert_eq!(CsrView::offsets(&second), CsrView::offsets(&full));
        assert_eq!(CsrView::targets(&second), CsrView::targets(&full));
    }

    #[test]
    fn refresh_emits_a_changed_vertex_delta() {
        let (g, _) = populated(2, 48);
        let owned = g.owned_view();
        let first = UnifiedView::unify(&owned);
        assert!(first.delta().is_none(), "full build has no delta");
        assert!(first.refreshed_from().is_none());

        // Insert both directions of a fresh edge: exactly two vertices'
        // adjacency changes, nothing is lost.
        g.insert_edge(5, 20).unwrap();
        g.insert_edge(20, 5).unwrap();
        let owned2 = g.owned_view();
        let second = first.refreshed(&owned2);
        assert_eq!(second.refreshed_from(), Some(first.view_id()));
        let delta = second.delta().expect("refresh carries a delta");
        assert_eq!(delta.changed_vertices(), &[5, 20]);
        assert_eq!(delta.len(), 2);
        assert!(!delta.has_deletions(), "insert-only burst");

        // Deleting an edge flips the deletions flag for its source only.
        assert!(g.delete_edge(5, 20).unwrap());
        let owned3 = g.owned_view();
        let third = second.refreshed(&owned3);
        let delta = third.delta().expect("delta");
        assert_eq!(delta.changed_vertices(), &[5]);
        assert!(delta.has_deletions());
    }

    #[test]
    fn noop_epoch_short_circuits_to_an_empty_delta() {
        // The bugfix pinned: a re-captured shard whose CSR is byte-identical
        // (flush with no net updates, or an insert cancelled by its delete)
        // must not count as merged and must yield an empty delta.
        let (g, _) = populated(2, 48);
        let first = UnifiedView::unify(&g.owned_view());

        // Re-capture every shard with zero net updates.
        let owned2 = g.owned_view();
        for s in 0..2 {
            assert!(
                !Arc::ptr_eq(&first.source_arc(s), &owned2.shard_view_arc(s)),
                "shard {s} really was re-captured"
            );
        }
        let second = first.refreshed(&owned2);
        assert_eq!(second.merged_shards(), 0, "byte-identical captures reused");
        let delta = second.delta().expect("delta");
        assert!(
            delta.is_empty(),
            "no-op epoch: {:?}",
            delta.changed_vertices()
        );
        assert!(!delta.has_deletions());

        // Insert + delete of the same edge resolves to an identical CSR too.
        g.insert_edge(7, 33).unwrap();
        assert!(g.delete_edge(7, 33).unwrap());
        let third = second.refreshed(&g.owned_view());
        assert_eq!(third.merged_shards(), 0);
        assert!(third.delta().expect("delta").is_empty());
        let full = UnifiedView::unify(&g.owned_view());
        assert_eq!(CsrView::offsets(&third), CsrView::offsets(&full));
        assert_eq!(CsrView::targets(&third), CsrView::targets(&full));
    }

    #[test]
    fn delta_covers_a_grown_vertex_range() {
        let (g, _) = populated(2, 16);
        let first = UnifiedView::unify(&g.owned_view());
        g.insert_edge(100, 2).unwrap();
        g.insert_edge(2, 100).unwrap();
        let second = first.refreshed(&g.owned_view());
        let delta = second.delta().expect("delta");
        assert_eq!(delta.changed_vertices(), &[2, 100]);
        assert!(!delta.has_deletions());
    }

    #[test]
    fn lost_edges_is_a_multiset_subset_check() {
        assert!(!lost_edges(&[], &[]));
        assert!(!lost_edges(&[], &[1, 2]));
        assert!(!lost_edges(&[2, 1], &[1, 3, 2]));
        assert!(lost_edges(&[1, 1], &[1, 2]), "multiplicity lost");
        assert!(lost_edges(&[4], &[1, 2, 3]));
        assert!(lost_edges(&[1, 2], &[2]));
    }

    #[test]
    fn empty_graph_unifies_to_an_edgeless_csr() {
        // The DGAP shards pre-allocate their vertex range, so an edgeless
        // graph still unifies over that range — with every span empty.
        let g = ShardedGraph::create_dgap_small_test(2).unwrap();
        let owned = g.owned_view();
        let unified = UnifiedView::unify(&owned);
        assert_eq!(unified.num_vertices(), owned.num_vertices());
        assert_eq!(GraphView::num_edges(&unified), 0);
        assert!((0..unified.num_vertices() as u64).all(|v| unified.neighbor_slice(v).is_empty()));
    }
}
