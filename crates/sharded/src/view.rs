//! The cross-shard composite snapshots: borrowed ([`ShardedView`]) and
//! owned ([`OwnedShardedView`]).

use crate::partition::Partitioner;
use dgap::{FrozenView, GraphView, SnapshotSource, VertexId};
use std::sync::Arc;

/// A consistent, read-only view over every shard of a
/// [`crate::ShardedGraph`], implementing [`GraphView`] so the analytics
/// kernels run unchanged on the partitioned graph.
///
/// Each per-shard view is that backend's own consistent snapshot.  Queries
/// are routed with the same deterministic [`Partitioner`] the write path
/// uses: a vertex's degree and adjacency live entirely in its owning shard.
///
/// Consistency note: the per-shard snapshots are taken one after another,
/// so the composite is *per-shard* consistent (the guarantee a cut of
/// independent partitions can offer) rather than a single atomic cut across
/// shards.  Quiesce ingest — e.g. [`crate::IngestPipeline::flush_all`] —
/// before snapshotting when a globally exact edge count matters.
pub struct ShardedView<'g, G: SnapshotSource + 'g> {
    views: Vec<G::View<'g>>,
    partitioner: Partitioner,
    // Cached at construction: the kernels' inner heuristics (BFS's α/β
    // switch, CC's convergence scans) call these per level/pass, and
    // re-reducing over every shard each time is pure waste — the snapshot
    // is immutable.
    num_vertices: usize,
    num_edges: usize,
}

impl<'g, G: SnapshotSource + 'g> ShardedView<'g, G> {
    pub(crate) fn new(views: Vec<G::View<'g>>, partitioner: Partitioner) -> Self {
        debug_assert_eq!(views.len(), partitioner.num_shards());
        let num_vertices = views.iter().map(|v| v.num_vertices()).max().unwrap_or(0);
        let num_edges = views.iter().map(|v| v.num_edges()).sum();
        ShardedView {
            views,
            partitioner,
            num_vertices,
            num_edges,
        }
    }

    /// The per-shard snapshot for `shard`.
    pub fn shard_view(&self, shard: usize) -> &G::View<'g> {
        &self.views[shard]
    }

    /// Number of shards backing this view.
    pub fn num_shards(&self) -> usize {
        self.views.len()
    }
}

impl<'g, G: SnapshotSource + 'g> GraphView for ShardedView<'g, G> {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.views[self.partitioner.shard_of(v)].degree(v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.views[self.partitioner.shard_of(v)].for_each_neighbor(v, f);
    }
}

/// An **owned** cross-shard snapshot: the same shard-routed composite as
/// [`ShardedView`], but with every per-shard snapshot materialised into a
/// [`FrozenView`], so the whole thing borrows nothing and can live in an
/// `Arc` for as long as anyone wants to query it.
///
/// This is the snapshot shape the service layer caches per epoch: capture
/// once when the write watermark advances, then answer any number of
/// queries from worker threads without holding a borrow of the graph.
///
/// Each per-shard snapshot sits behind its own `Arc`, so an *incremental*
/// refresh (see [`crate::ShardedGraph::owned_view_reusing`]) re-captures
/// only the shards whose write watermark advanced and shares the untouched
/// shards' snapshots with the previous epoch's view — single-shard write
/// bursts refresh in O(one shard), not O(all shards).
///
/// Because [`FrozenView`] stores *resolved* adjacency, `degree` and
/// `num_edges` here count visible neighbours (tombstones applied) — after
/// deletions they match the in-memory reference oracle, unlike the
/// record-counting borrowed snapshots.
pub struct OwnedShardedView {
    views: Vec<Arc<FrozenView>>,
    partitioner: Partitioner,
    // Cached at construction (see `ShardedView`): per-call reductions over
    // all shards would sit inside the kernels' inner heuristics.
    num_vertices: usize,
    num_edges: usize,
}

impl OwnedShardedView {
    pub(crate) fn new(views: Vec<Arc<FrozenView>>, partitioner: Partitioner) -> Self {
        debug_assert_eq!(views.len(), partitioner.num_shards());
        let num_vertices = views.iter().map(|v| v.num_vertices()).max().unwrap_or(0);
        let num_edges = views.iter().map(|v| v.num_edges()).sum();
        OwnedShardedView {
            views,
            partitioner,
            num_vertices,
            num_edges,
        }
    }

    /// The materialised snapshot of `shard`.
    pub fn shard_view(&self, shard: usize) -> &FrozenView {
        self.views[shard].as_ref()
    }

    /// Shared handle to the materialised snapshot of `shard` — the unit an
    /// incremental refresh carries over between epochs (tests assert reuse
    /// with `Arc::ptr_eq` on exactly these).
    pub fn shard_view_arc(&self, shard: usize) -> Arc<FrozenView> {
        Arc::clone(&self.views[shard])
    }

    /// Number of shards backing this view.
    pub fn num_shards(&self) -> usize {
        self.views.len()
    }

    /// The vertex partitioner the composite routes with (what
    /// [`crate::UnifiedView`] bakes into its per-vertex owner table).
    pub(crate) fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The neighbours of `v` as a borrowed slice (zero-copy: the adjacency
    /// of a vertex lives contiguously inside its owning shard's snapshot).
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        self.views[self.partitioner.shard_of(v)].neighbor_slice(v)
    }
}

impl GraphView for OwnedShardedView {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.neighbor_slice(v).len()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &d in self.neighbor_slice(v) {
            f(d);
        }
    }

    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.neighbor_slice(v).to_vec()
    }
}
