//! The cross-shard composite snapshot.

use crate::partition::Partitioner;
use dgap::{GraphView, SnapshotSource, VertexId};

/// A consistent, read-only view over every shard of a
/// [`crate::ShardedGraph`], implementing [`GraphView`] so the analytics
/// kernels run unchanged on the partitioned graph.
///
/// Each per-shard view is that backend's own consistent snapshot.  Queries
/// are routed with the same deterministic [`Partitioner`] the write path
/// uses: a vertex's degree and adjacency live entirely in its owning shard.
///
/// Consistency note: the per-shard snapshots are taken one after another,
/// so the composite is *per-shard* consistent (the guarantee a cut of
/// independent partitions can offer) rather than a single atomic cut across
/// shards.  Quiesce ingest — e.g. [`crate::IngestPipeline::flush_all`] —
/// before snapshotting when a globally exact edge count matters.
pub struct ShardedView<'g, G: SnapshotSource + 'g> {
    views: Vec<G::View<'g>>,
    partitioner: Partitioner,
}

impl<'g, G: SnapshotSource + 'g> ShardedView<'g, G> {
    pub(crate) fn new(views: Vec<G::View<'g>>, partitioner: Partitioner) -> Self {
        debug_assert_eq!(views.len(), partitioner.num_shards());
        ShardedView { views, partitioner }
    }

    /// The per-shard snapshot for `shard`.
    pub fn shard_view(&self, shard: usize) -> &G::View<'g> {
        &self.views[shard]
    }

    /// Number of shards backing this view.
    pub fn num_shards(&self) -> usize {
        self.views.len()
    }
}

impl<'g, G: SnapshotSource + 'g> GraphView for ShardedView<'g, G> {
    fn num_vertices(&self) -> usize {
        self.views
            .iter()
            .map(|v| v.num_vertices())
            .max()
            .unwrap_or(0)
    }

    fn num_edges(&self) -> usize {
        self.views.iter().map(|v| v.num_edges()).sum()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.views[self.partitioner.shard_of(v)].degree(v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.views[self.partitioner.shard_of(v)].for_each_neighbor(v, f);
    }
}
