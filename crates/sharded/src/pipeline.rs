//! The batched ingest pipeline: per-shard lock-free queues drained by one
//! worker thread per shard, with backpressure, completion tickets and a
//! durability barrier.
//!
//! Every lane counter is an [`obs::Counter`] registered (with a
//! `shard="i"` label) in the pipeline's [`obs::Registry`], so one
//! `Registry::snapshot()` pass reads the whole pipeline.  The counters that
//! double as synchronisation watermarks (`submitted`/`applied`/`drained` —
//! the flush barrier and tickets wait on them — and `batches`, which
//! `wait_for` validates forged tickets against) keep their Release/Acquire
//! orderings through the explicit `_ordered` variants; the rest record
//! relaxed.  Each queued batch carries its enqueue instant, so the drain
//! worker can feed the enqueue→drain latency histogram and leave slow-op
//! trace events without any extra bookkeeping on the submit path.

use crate::client_table::ClientTable;
use crate::failpoint::{CrashHook, CrashSite};
use crate::graph::ShardedGraph;
use crate::queue::BatchQueue;
use crate::stats::{PipelineStats, ShardIngestStats};
use crate::{Edge, ShardedConfig};
use dgap::{DynamicGraph, GraphError, GraphResult, Update};
use error_slot::ErrorSlot;
use obs::{Counter, Gauge, Histogram, Registry, TraceKind};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One enqueued sub-batch: the operations plus the instant they entered the
/// queue, so the drain worker can record the enqueue→drain latency.
struct QueuedBatch {
    ops: Vec<Update>,
    enqueued_at: Instant,
    /// `(client_id, op_id)` for durably tagged submissions
    /// ([`IngestPipeline::submit_tagged`]); `None` for the plain fire-and-
    /// forget path.
    client: Option<(u64, u64)>,
}

/// Per-shard ingest lane shared between producers and the drain worker.
struct Lane {
    queue: BatchQueue<QueuedBatch>,
    /// Operations enqueued to this lane (incremented *before* the push so
    /// the flush barrier can never observe applied > submitted-at-entry).
    submitted: Arc<Counter>,
    /// Operations the worker has taken out of a batch and offered to the
    /// backend (failed ones included, so the barrier terminates).
    applied: Arc<Counter>,
    /// Batches the worker has fully applied.  The single consumer pops in
    /// queue-position order, so `drained == k` means exactly the batches at
    /// positions `0..k` are applied — the watermark [`Ticket`]s wait on.
    drained: Arc<Counter>,
    /// Batches ever enqueued.  Rises (Release) before the submit that
    /// pushed the batch returns its [`Ticket`], so it doubles as the
    /// highest ticket target this lane has issued — the bound `wait_for`
    /// rejects forged tickets against.
    batches: Arc<Counter>,
    stalls: Arc<Counter>,
    errors: Arc<Counter>,
    deletes: Arc<Counter>,
    /// Tagged batches skipped whole because the shard's client table already
    /// had their op id committed — replays deduplicated at the drain level.
    replays: Arc<Counter>,
    /// Batches currently sitting in the queue (enqueued, not yet drained).
    depth: Arc<Gauge>,
    /// Set when the shard's drain worker died (panicked); producers and the
    /// flush barrier must stop waiting on this lane.
    dead: AtomicBool,
}

impl Lane {
    fn new(registry: &Registry, shard: usize, queue_capacity: usize) -> Lane {
        let labels = format!("shard=\"{shard}\"");
        Lane {
            queue: BatchQueue::with_capacity(queue_capacity),
            submitted: registry.counter_with("pipeline_ops_submitted", &labels),
            applied: registry.counter_with("pipeline_ops_applied", &labels),
            drained: registry.counter_with("pipeline_batches_drained", &labels),
            batches: registry.counter_with("pipeline_batches_submitted", &labels),
            stalls: registry.counter_with("pipeline_backpressure_stalls", &labels),
            errors: registry.counter_with("pipeline_op_errors", &labels),
            deletes: registry.counter_with("pipeline_deletes_applied", &labels),
            replays: registry.counter_with("pipeline_replay_skips", &labels),
            depth: registry.gauge_with("pipeline_queue_depth", &labels),
            dead: AtomicBool::new(false),
        }
    }
}

mod error_slot {
    //! A once-set error slot: lighter than a mutex on the hot path (a single
    //! Acquire load when no error has occurred).

    use dgap::GraphError;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    #[derive(Default)]
    pub(super) struct ErrorSlot {
        any: AtomicBool,
        first: Mutex<Option<GraphError>>,
    }

    impl ErrorSlot {
        pub(super) fn record(&self, err: GraphError) {
            let mut slot = self.first.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(err);
            }
            self.any.store(true, Ordering::Release);
        }

        pub(super) fn get(&self) -> Option<GraphError> {
            if !self.any.load(Ordering::Acquire) {
                return None;
            }
            self.first.lock().unwrap_or_else(|p| p.into_inner()).clone()
        }
    }
}

struct Shared<G> {
    graph: Arc<ShardedGraph<G>>,
    lanes: Vec<Lane>,
    shutdown: AtomicBool,
    error: ErrorSlot,
    /// The metric registry the lanes are registered in (shared with the
    /// owning service, when there is one).
    registry: Arc<Registry>,
    /// Enqueue→drain latency of every batch (includes any backpressure wait
    /// on the submit side, since the clock starts at the first push attempt).
    queue_latency: Arc<Histogram>,
    /// Interned trace kind for slow batch drains.
    drain_kind: TraceKind,
    /// Per-shard durable client tables (exactly-once commit records for
    /// tagged batches); `None` for pipelines without the durable path.
    tables: Option<Vec<ClientTable>>,
    /// Crash-injection hook for the fuzz harness; `None` in production.
    crash: Option<CrashHook>,
}

impl<G> Shared<G> {
    /// The structured error a dead lane surfaces to producers and waiters.
    fn lane_error(&self, shard: usize) -> GraphError {
        self.error.get().unwrap_or(GraphError::WorkerDied { shard })
    }
}

/// A completion handle for one [`IngestPipeline::submit`] call.
///
/// The ticket records, per shard, the queue position just past the last
/// batch the call enqueued.  [`IngestPipeline::wait_for`] blocks until each
/// of those batches has been fully applied by its drain worker — the
/// submitting caller's *read-your-writes* point — without waiting for
/// anything submitted afterwards (unlike the global
/// [`IngestPipeline::flush_all`] barrier, which quiesces every lane).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ticket {
    /// Per-shard drained-batch targets (0 = nothing enqueued there).
    targets: Vec<u64>,
}

impl Ticket {
    /// A ticket that waits for nothing (already satisfied).
    pub fn empty() -> Ticket {
        Ticket::default()
    }

    /// Whether the ticket waits for anything at all.
    pub fn is_empty(&self) -> bool {
        self.targets.iter().all(|&t| t == 0)
    }

    /// The raw per-shard drained-batch targets — the ticket's entire state,
    /// exposed so a transport can serialise it.  Pair with
    /// [`Ticket::from_targets`] on the decode side.
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Rebuild a ticket from targets produced by [`Ticket::targets`].  A
    /// ticket only means something to the pipeline that issued it; waiting
    /// on a foreign or forged ticket whose targets name shards or batch
    /// positions the pipeline never issued returns an error (it never
    /// blocks on an unreachable watermark, and never corrupts state).
    pub fn from_targets(targets: Vec<u64>) -> Ticket {
        Ticket { targets }
    }

    /// Fold `other` into `self`, so one ticket covers both submissions.
    /// Tickets from the same pipeline compose; waiting on the merged ticket
    /// is equivalent to waiting on both.
    pub fn merge(&mut self, other: &Ticket) {
        if self.targets.len() < other.targets.len() {
            self.targets.resize(other.targets.len(), 0);
        }
        for (mine, theirs) in self.targets.iter_mut().zip(&other.targets) {
            *mine = (*mine).max(*theirs);
        }
    }
}

thread_local! {
    /// Per-thread scatter scratch reused across `submit` calls: the outer
    /// vector and each inner vector keep their capacity between calls, so
    /// the steady-state cost of a submit is one exact-size allocation per
    /// *non-empty* shard batch instead of `num_shards + touched` growing
    /// vectors per call.
    static SCATTER: RefCell<Vec<Vec<Update>>> = const { RefCell::new(Vec::new()) };
}

/// A multi-producer ingest front-end for a [`ShardedGraph`].
///
/// Any number of threads may call [`IngestPipeline::submit`] concurrently;
/// each call scatters its typed [`Update`] batch by key-vertex shard
/// (deletes flow down the same partitioned path as inserts) and enqueues
/// one sub-batch per shard onto that shard's lock-free queue.  One worker
/// thread per shard drains its queue into the backend, so each backend
/// instance sees a single writer and zero cross-shard synchronisation.
///
/// When a shard's queue is full, `submit` spins on that shard
/// (backpressure) until the worker catches up — producers can never outrun
/// memory.  Each successful `submit` returns a [`Ticket`];
/// [`IngestPipeline::wait_for`] turns it into read-your-writes visibility.
/// [`IngestPipeline::flush_all`] remains the global durability barrier: it
/// waits for every operation submitted before the call to be applied, then
/// flushes every backend.
pub struct IngestPipeline<G: DynamicGraph + 'static> {
    shared: Arc<Shared<G>>,
    workers: Vec<JoinHandle<()>>,
}

impl<G: DynamicGraph + 'static> IngestPipeline<G> {
    /// Spawn one drain worker per shard of `graph`, with a private metric
    /// registry.  Embedders that want the pipeline's metrics in their own
    /// registry (the service does) use [`IngestPipeline::with_registry`].
    pub fn new(graph: Arc<ShardedGraph<G>>, config: &ShardedConfig) -> Self {
        Self::with_registry(graph, config, Arc::new(Registry::new()))
    }

    /// Spawn one drain worker per shard of `graph`, registering the lane
    /// counters, queue-depth gauges and latency histogram in `registry`.
    pub fn with_registry(
        graph: Arc<ShardedGraph<G>>,
        config: &ShardedConfig,
        registry: Arc<Registry>,
    ) -> Self {
        Self::build(graph, config, registry, None, None)
    }

    /// Like [`IngestPipeline::with_registry`], but with one durable
    /// [`ClientTable`] per shard, enabling the exactly-once
    /// [`IngestPipeline::submit_tagged`] path.  The tables must come from
    /// the same shard pools as `graph` (one per shard, shard order) and must
    /// have been opened — crash resolution included — *before* this call,
    /// since the workers start applying immediately.
    pub fn with_client_tables(
        graph: Arc<ShardedGraph<G>>,
        config: &ShardedConfig,
        registry: Arc<Registry>,
        tables: Vec<ClientTable>,
    ) -> Self {
        Self::build(graph, config, registry, Some(tables), None)
    }

    /// [`IngestPipeline::with_client_tables`] plus a [`CrashHook`] invoked
    /// at every [`CrashSite`] of the tagged commit protocol — the crash-point
    /// fuzzing harness's entry point.
    pub fn with_crash_hook(
        graph: Arc<ShardedGraph<G>>,
        config: &ShardedConfig,
        registry: Arc<Registry>,
        tables: Vec<ClientTable>,
        hook: CrashHook,
    ) -> Self {
        Self::build(graph, config, registry, Some(tables), Some(hook))
    }

    fn build(
        graph: Arc<ShardedGraph<G>>,
        config: &ShardedConfig,
        registry: Arc<Registry>,
        tables: Option<Vec<ClientTable>>,
        crash: Option<CrashHook>,
    ) -> Self {
        config.validate();
        assert_eq!(
            config.num_shards,
            graph.num_shards(),
            "ShardedConfig::num_shards must match the graph it feeds"
        );
        if let Some(tables) = &tables {
            assert_eq!(
                tables.len(),
                graph.num_shards(),
                "client tables must cover every shard"
            );
        }
        let lanes = (0..graph.num_shards())
            .map(|shard| Lane::new(&registry, shard, config.queue_capacity))
            .collect();
        let queue_latency = registry.histogram("pipeline_enqueue_to_drain_nanos");
        let drain_kind = registry.slow_ops().kind("drain_batch");
        let shared = Arc::new(Shared {
            graph,
            lanes,
            shutdown: AtomicBool::new(false),
            error: ErrorSlot::default(),
            registry,
            queue_latency,
            drain_kind,
            tables,
            crash,
        });
        let workers = (0..shared.graph.num_shards())
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ingest-shard-{shard}"))
                    .spawn(move || {
                        // A panicking backend must poison the lane, not
                        // silently wedge every producer and flush barrier.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            drain_worker(&shared, shard)
                        }));
                        if caught.is_err() {
                            shared.error.record(GraphError::WorkerDied { shard });
                            shared.lanes[shard].dead.store(true, Ordering::Release);
                        }
                    })
                    .expect("spawn ingest worker")
            })
            .collect();
        IngestPipeline { shared, workers }
    }

    /// Scatter `ops` to their shards and enqueue them.  Blocks (per shard)
    /// while that shard's queue is full.
    ///
    /// Returns a [`Ticket`] covering everything this call enqueued, or the
    /// recorded [`GraphError`] if a shard's drain worker has died (in which
    /// case sub-batches already enqueued on *other* shards stay enqueued —
    /// submission is not transactional across shards).
    pub fn submit(&self, ops: &[Update]) -> GraphResult<Ticket> {
        self.submit_iter(ops.iter().copied(), None)
    }

    /// Convenience for plain insert-only edge streams: every `(src, dst)`
    /// tuple becomes an [`Update::InsertEdge`].
    pub fn submit_edges(&self, edges: &[Edge]) -> GraphResult<Ticket> {
        self.submit_iter(
            edges.iter().map(|&(src, dst)| Update::InsertEdge(src, dst)),
            None,
        )
    }

    /// Submit `ops` tagged `(client_id, op_id)` for detectable exactly-once
    /// application.  Requires a pipeline built with client tables
    /// ([`IngestPipeline::with_client_tables`]); ids must be non-zero (0 is
    /// the tables' free-slot / no-op sentinel).
    ///
    /// A tagged operation enqueues a sub-batch on **every** shard — empty
    /// ones included — so each shard's durable watermark for the client
    /// advances to `op_id` when it commits, and the operation as a whole is
    /// committed exactly when the minimum per-shard watermark
    /// ([`IngestPipeline::client_committed`]) reaches it.
    ///
    /// Exactly-once holds under one client contract: a retry of `op_id`
    /// must carry the **identical** update vector, and a client's ops must
    /// be submitted (and re-submitted) in op-id order.  Shards that already
    /// committed the op skip the replayed sub-batch (counted in the
    /// `pipeline_replay_skips` metric); a shard that crashed mid-apply
    /// resumes from its durable cursor, so no update is ever applied twice.
    pub fn submit_tagged(&self, ops: &[Update], client_id: u64, op_id: u64) -> GraphResult<Ticket> {
        if self.shared.tables.is_none() {
            return Err(GraphError::Unsupported(
                "submit_tagged on a pipeline without client tables",
            ));
        }
        if client_id == 0 || op_id == 0 {
            return Err(GraphError::Protocol(
                "client_id and op_id must be non-zero".into(),
            ));
        }
        self.submit_iter(ops.iter().copied(), Some((client_id, op_id)))
    }

    fn submit_iter(
        &self,
        ops: impl Iterator<Item = Update>,
        client: Option<(u64, u64)>,
    ) -> GraphResult<Ticket> {
        let partitioner = self.shared.graph.partitioner();
        let num_shards = partitioner.num_shards();
        let mut ticket = Ticket {
            targets: vec![0; num_shards],
        };
        SCATTER.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            if scratch.len() < num_shards {
                scratch.resize_with(num_shards, Vec::new);
            }
            for op in ops {
                scratch[partitioner.shard_of(op.key_vertex())].push(op);
            }
            let mut result = Ok(());
            for shard in 0..num_shards {
                let buf = &mut scratch[shard];
                // Tagged ops fan to every shard (empty sub-batches advance
                // the shard's per-client watermark); plain ops skip shards
                // they do not touch.
                if buf.is_empty() && client.is_none() {
                    continue;
                }
                if result.is_err() {
                    // A previous lane was dead: drop the rest of the call's
                    // ops (nothing was accounted for them yet).
                    buf.clear();
                    continue;
                }
                let lane = &self.shared.lanes[shard];
                let len = buf.len() as u64;
                // `submitted` must rise before the push (the flush barrier's
                // invariant); `batches` counts only successful enqueues, so
                // it rises after.
                lane.submitted.add_ordered(len, Ordering::Release);
                // Exact-size copy out of the warm scratch buffer: the
                // scratch keeps its capacity for the next call and only the
                // enqueued batch is freshly allocated.
                let mut pending = QueuedBatch {
                    ops: buf.clone(),
                    enqueued_at: Instant::now(),
                    client,
                };
                buf.clear();
                loop {
                    if lane.dead.load(Ordering::Acquire) {
                        // These ops can never be applied; undo the submit
                        // accounting so flush_all does not wait for them.
                        lane.submitted.sub_ordered(len, Ordering::Release);
                        result = Err(self.shared.lane_error(shard));
                        break;
                    }
                    match lane.queue.push(pending) {
                        Ok(pos) => {
                            // Release so the forged-ticket bound in
                            // `wait_for` is visible to anyone who can hold
                            // the ticket this call returns.
                            lane.batches.add_ordered(1, Ordering::Release);
                            lane.depth.add(1);
                            ticket.targets[shard] = pos as u64 + 1;
                            break;
                        }
                        Err(back) => {
                            pending = back;
                            lane.stalls.inc();
                            std::thread::yield_now();
                        }
                    }
                }
            }
            result
        })?;
        Ok(ticket)
    }

    /// Block until every batch covered by `ticket` has been applied to its
    /// backend — the submitting caller's read-your-writes point.  Unlike
    /// [`IngestPipeline::flush_all`], this does not quiesce the pipeline or
    /// wait for other producers' later submissions, and it does not issue a
    /// durability flush.
    ///
    /// A forged or foreign ticket — targets naming a shard this pipeline
    /// does not have, or a batch position it never issued — returns an
    /// error immediately.  Tickets can arrive off an untrusted transport
    /// ([`Ticket::from_targets`]), so an unreachable target must not spin
    /// the calling thread forever.
    pub fn wait_for(&self, ticket: &Ticket) -> GraphResult<()> {
        self.wait_for_deadline(ticket, None)
    }

    /// [`IngestPipeline::wait_for`] with an optional upper bound on the
    /// wait.  `deadline = Some(d)` turns an unbounded block into a bounded
    /// one: if the ticket has not drained within `d`, the call returns
    /// [`GraphError::Timeout`] carrying the elapsed milliseconds.  The
    /// ticket stays valid — the batches are still queued and a later wait
    /// can succeed — so a timeout is a retryable signal, not a failure of
    /// the submitted work.
    pub fn wait_for_deadline(
        &self,
        ticket: &Ticket,
        deadline: Option<Duration>,
    ) -> GraphResult<()> {
        let start = Instant::now();
        for (shard, &target) in ticket.targets.iter().enumerate() {
            if target == 0 {
                continue;
            }
            let lane = self.shared.lanes.get(shard).ok_or_else(|| {
                GraphError::Other(format!(
                    "ticket names shard {shard} but the pipeline has {}",
                    self.shared.lanes.len()
                ))
            })?;
            // `batches` rises (Release) before the submit that pushed a
            // batch returns its ticket, so any ticket a caller can
            // legitimately hold satisfies `target <= batches` here.  A
            // larger target names a batch that was never issued and would
            // never drain.
            let issued = lane.batches.get_ordered(Ordering::Acquire);
            if target > issued {
                return Err(GraphError::Other(format!(
                    "ticket target {target} on shard {shard} is beyond the {issued} \
                     batches ever submitted: forged or foreign ticket"
                )));
            }
            let mut spins = 0u32;
            while lane.drained.get_ordered(Ordering::Acquire) < target {
                if lane.dead.load(Ordering::Acquire) {
                    return Err(self.shared.lane_error(shard));
                }
                if let Some(limit) = deadline {
                    let waited = start.elapsed();
                    if waited >= limit {
                        return Err(GraphError::Timeout {
                            waited_ms: waited.as_millis() as u64,
                        });
                    }
                }
                spins += 1;
                if spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
        Ok(())
    }

    /// The pipeline's monotonic write watermark: total batches fully
    /// applied across all shards.  It advances every time a drain worker
    /// finishes a batch, so an epoch cache can compare watermarks to decide
    /// whether a cached snapshot is stale without quiescing the pipeline.
    pub fn watermark(&self) -> u64 {
        self.shared
            .lanes
            .iter()
            .map(|l| l.drained.get_ordered(Ordering::Acquire))
            .sum()
    }

    /// Per-shard write watermarks, in shard order: `shard_watermarks()[i]`
    /// is the number of batches shard `i`'s drain worker has fully applied.
    /// A shard whose entry did not move since a snapshot was captured has
    /// had nothing applied to it, so the snapshot of *that shard* is still
    /// current — the staleness test behind the service layer's incremental
    /// refresh ([`crate::ShardedGraph::owned_view_reusing`]).
    pub fn shard_watermarks(&self) -> Vec<u64> {
        self.shared
            .lanes
            .iter()
            .map(|l| l.drained.get_ordered(Ordering::Acquire))
            .collect()
    }

    /// Durability barrier: wait until every operation submitted before this
    /// call has been applied to its backend, flush every backend, and
    /// surface the first backend error (if any operation was rejected since
    /// creation).
    pub fn flush_all(&self) -> GraphResult<()> {
        // Snapshot the submit counters first: ops submitted concurrently
        // with this call are not part of the barrier.
        let targets: Vec<u64> = self
            .shared
            .lanes
            .iter()
            .map(|l| l.submitted.get_ordered(Ordering::Acquire))
            .collect();
        for (shard, (lane, &target)) in self.shared.lanes.iter().zip(&targets).enumerate() {
            let mut spins = 0u32;
            while lane.applied.get_ordered(Ordering::Acquire) < target {
                if lane.dead.load(Ordering::Acquire) {
                    return Err(self.shared.lane_error(shard));
                }
                spins += 1;
                if spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
        self.shared.graph.flush();
        match self.shared.error.get() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// The graph this pipeline feeds.
    pub fn graph(&self) -> &Arc<ShardedGraph<G>> {
        &self.shared.graph
    }

    /// Number of shard lanes (== the graph's shard count).
    pub fn num_shards(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Whether the durable exactly-once path is enabled
    /// ([`IngestPipeline::with_client_tables`]).
    pub fn has_client_tables(&self) -> bool {
        self.shared.tables.is_some()
    }

    /// Highest op id of `client` durably committed on **every** shard — the
    /// watermark [`IngestPipeline::submit_tagged`] semantics are defined by.
    /// `None` when no shard has ever heard of the client (or the pipeline
    /// has no client tables); a shard that knows other clients but not this
    /// one counts as 0.
    pub fn client_committed(&self, client: u64) -> Option<u64> {
        let tables = self.shared.tables.as_ref()?;
        if tables.iter().all(|t| t.committed(client).is_none()) {
            return None;
        }
        tables
            .iter()
            .map(|t| t.committed(client).unwrap_or(0))
            .min()
    }

    /// The metric registry the pipeline records into (lane counters,
    /// queue-depth gauges, the enqueue→drain histogram and the slow-op
    /// trace ring).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Snapshot the per-shard ingest counters.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            shards: self
                .shared
                .lanes
                .iter()
                .map(|l| ShardIngestStats {
                    ops_submitted: l.submitted.get(),
                    ops_applied: l.applied.get(),
                    deletes_applied: l.deletes.get(),
                    batches_submitted: l.batches.get(),
                    batches_drained: l.drained.get(),
                    backpressure_stalls: l.stalls.get(),
                    op_errors: l.errors.get(),
                    replay_skips: l.replays.get(),
                })
                .collect(),
        }
    }
}

impl<G: DynamicGraph + 'static> Drop for IngestPipeline<G> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Apply one update, routing errors into the lane counters.
fn apply_op<G: DynamicGraph>(shared: &Shared<G>, shard: usize, backend: &G, op: Update) {
    let lane = &shared.lanes[shard];
    let outcome = match op {
        Update::InsertVertex(v) => backend.insert_vertex(v),
        Update::InsertEdge(src, dst) => backend.insert_edge(src, dst),
        Update::DeleteEdge(src, dst) => {
            lane.deletes.inc();
            // A delete of an absent edge is a no-op, not an
            // error: only backend failures are recorded.
            backend.delete_edge(src, dst).map(|_existed| ())
        }
    };
    if let Err(err) = outcome {
        lane.errors.inc();
        shared.error.record(err);
    }
}

/// Apply a `(client, op)`-tagged batch under the durable commit protocol:
///
/// 1. Already committed on this shard?  Skip the whole batch (replay dedup).
/// 2. `ClientTable::begin` persists the apply journal and yields the resume
///    index (0, or the parked cursor of an interrupted earlier attempt).
/// 3. After *each* update, `ClientTable::advance` persists the cursor
///    `(updates applied, record counter)` — a crash leaves at most one
///    update in doubt, which the record counter disambiguates at reopen.
/// 4. Flush the backend, then persist the commit record: the watermark is
///    the **last** thing to land, so `committed >= op` implies every update
///    of the op is durable on this shard.
fn drain_tagged<G: DynamicGraph>(
    shared: &Shared<G>,
    shard: usize,
    backend: &G,
    table: &ClientTable,
    batch: &QueuedBatch,
    client: u64,
    op_id: u64,
) {
    let lane = &shared.lanes[shard];
    if let Some(hook) = &shared.crash {
        hook(CrashSite::BatchStart, shard);
    }
    if table.committed(client).unwrap_or(0) >= op_id {
        lane.replays.inc();
        return;
    }
    let start = match table.begin(client, op_id, backend.num_edges() as u64) {
        Ok(start) => start,
        Err(err) => {
            lane.errors.inc();
            shared.error.record(err);
            return;
        }
    };
    for (i, &op) in batch.ops.iter().enumerate().skip(start as usize) {
        apply_op(shared, shard, backend, op);
        table.advance(i as u64 + 1, backend.num_edges() as u64);
        if let Some(hook) = &shared.crash {
            hook(CrashSite::BetweenOps, shard);
        }
    }
    // The applied updates must be durable before the commit record lands.
    backend.flush();
    if let Some(hook) = &shared.crash {
        hook(CrashSite::BeforeCommit, shard);
    }
    table.commit(client, op_id);
    if let Some(hook) = &shared.crash {
        hook(CrashSite::AfterCommit, shard);
    }
}

fn drain_worker<G: DynamicGraph>(shared: &Shared<G>, shard: usize) {
    let backend = shared.graph.shard_arc(shard);
    let lane = &shared.lanes[shard];
    let table = shared.tables.as_ref().map(|t| &t[shard]);
    let mut idle_spins = 0u32;
    loop {
        match lane.queue.pop() {
            Some(batch) => {
                idle_spins = 0;
                lane.depth.sub(1);
                match (batch.client, table) {
                    (Some((client, op_id)), Some(table)) => {
                        drain_tagged(shared, shard, &backend, table, &batch, client, op_id);
                    }
                    _ => {
                        for &op in &batch.ops {
                            apply_op(shared, shard, &backend, op);
                        }
                    }
                }
                lane.applied
                    .add_ordered(batch.ops.len() as u64, Ordering::Release);
                // Publish batch completion only after every op in it is
                // applied — wait_for relies on this ordering.
                lane.drained.add_ordered(1, Ordering::Release);
                // Telemetry after the watermark moves: a couple of relaxed
                // atomics, never on the waiters' critical path.
                let nanos = batch.enqueued_at.elapsed().as_nanos() as u64;
                shared.queue_latency.record(nanos);
                shared.registry.slow_ops().record_slow(
                    shared.drain_kind,
                    shard as u64,
                    nanos,
                    lane.drained.get(),
                );
            }
            None => {
                // Queue drained: exit once producers are done, otherwise
                // back off (spin briefly, then sleep).
                if shared.shutdown.load(Ordering::Acquire) && lane.queue.is_empty() {
                    break;
                }
                idle_spins += 1;
                if idle_spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::{GraphView, SnapshotSource};

    fn pipeline_over(cfg: ShardedConfig) -> IngestPipeline<dgap::Dgap> {
        let graph = Arc::new(ShardedGraph::create_dgap_small_test(cfg.num_shards).unwrap());
        IngestPipeline::new(graph, &cfg)
    }

    fn durable_pipeline_over(cfg: ShardedConfig) -> IngestPipeline<dgap::Dgap> {
        let graph = Arc::new(ShardedGraph::create_dgap_small_test(cfg.num_shards).unwrap());
        let tables = (0..cfg.num_shards)
            .map(|i| {
                let shard = graph.shard(i);
                ClientTable::create_or_open(shard.pool(), shard.num_edges() as u64).unwrap()
            })
            .collect();
        IngestPipeline::with_client_tables(graph, &cfg, Arc::new(Registry::new()), tables)
    }

    /// A backend whose inserts panic — used to poison drain workers.
    struct PanicGraph;
    impl DynamicGraph for PanicGraph {
        fn insert_vertex(&self, _v: u64) -> GraphResult<()> {
            Ok(())
        }
        fn insert_edge(&self, _s: u64, _d: u64) -> GraphResult<()> {
            panic!("backend blew up");
        }
        fn num_vertices(&self) -> usize {
            0
        }
        fn num_edges(&self) -> usize {
            0
        }
        fn flush(&self) {}
        fn system_name(&self) -> &'static str {
            "panic"
        }
    }

    /// A backend whose inserts stall — drives the bounded-wait path.
    struct SlowGraph;
    impl DynamicGraph for SlowGraph {
        fn insert_vertex(&self, _v: u64) -> GraphResult<()> {
            Ok(())
        }
        fn insert_edge(&self, _s: u64, _d: u64) -> GraphResult<()> {
            std::thread::sleep(Duration::from_millis(300));
            Ok(())
        }
        fn num_vertices(&self) -> usize {
            0
        }
        fn num_edges(&self) -> usize {
            0
        }
        fn flush(&self) {}
        fn system_name(&self) -> &'static str {
            "slow"
        }
    }

    #[test]
    fn bounded_wait_times_out_and_the_ticket_stays_usable() {
        let graph = Arc::new(ShardedGraph::new(1, |_| Ok(SlowGraph)).unwrap());
        let p = IngestPipeline::new(graph, &ShardedConfig::with_shards(1));
        let ticket = p.submit(&[Update::InsertEdge(0, 1)]).unwrap();
        match p.wait_for_deadline(&ticket, Some(Duration::from_millis(5))) {
            Err(GraphError::Timeout { waited_ms }) => assert!(waited_ms >= 5),
            other => panic!("expected a timeout, got {other:?}"),
        }
        // The timeout did not invalidate anything: an unbounded wait on the
        // same ticket completes once the slow backend catches up.
        p.wait_for(&ticket).unwrap();
    }

    fn dead_lane_pipeline() -> IngestPipeline<PanicGraph> {
        let graph = Arc::new(ShardedGraph::new(1, |_| Ok(PanicGraph)).unwrap());
        let pipeline = IngestPipeline::new(graph, &ShardedConfig::with_shards(1));
        let ticket = pipeline.submit(&[Update::InsertEdge(0, 1)]).unwrap();
        // Wait until the worker has actually died.
        assert!(matches!(
            pipeline.wait_for(&ticket),
            Err(GraphError::WorkerDied { shard: 0 })
        ));
        pipeline
    }

    #[test]
    fn ingests_and_flushes() {
        let p = pipeline_over(ShardedConfig::small_test());
        let edges: Vec<Edge> = (0..40u64).map(|i| (i % 10, (i + 1) % 10)).collect();
        p.submit_edges(&edges).unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.graph().num_edges(), 40);
        let stats = p.stats();
        assert_eq!(stats.ops_submitted(), 40);
        assert_eq!(stats.ops_applied(), 40);
        assert_eq!(stats.op_errors(), 0);
        assert_eq!(stats.deletes_applied(), 0);
    }

    #[test]
    fn typed_updates_flow_shard_partitioned() {
        let p = pipeline_over(ShardedConfig::small_test());
        let ticket = p
            .submit(&[
                Update::InsertVertex(3),
                Update::InsertEdge(3, 4),
                Update::InsertEdge(3, 5),
                Update::DeleteEdge(3, 4),
            ])
            .unwrap();
        p.wait_for(&ticket).unwrap();
        let graph = p.graph();
        let view = graph.consistent_view();
        // Tombstone applied: only (3 -> 5) survives resolution.
        assert_eq!(view.neighbors(3), vec![5]);
        assert_eq!(p.stats().deletes_applied(), 1);
    }

    #[test]
    fn ticket_wait_gives_read_your_writes_without_flush() {
        let p = pipeline_over(ShardedConfig::small_test());
        let mut ticket = Ticket::empty();
        assert!(ticket.is_empty());
        for i in 0..20u64 {
            let t = p.submit(&[Update::InsertEdge(7, 100 + i)]).unwrap();
            ticket.merge(&t);
        }
        assert!(!ticket.is_empty());
        p.wait_for(&ticket).unwrap();
        // No flush_all: the ticket alone guarantees the writes are applied.
        let graph = p.graph();
        assert_eq!(graph.consistent_view().degree(7), 20);
        assert!(p.watermark() >= 20);
    }

    #[test]
    fn forged_ticket_targets_error_instead_of_spinning_forever() {
        let p = pipeline_over(ShardedConfig::small_test());
        let t = p.submit(&[Update::InsertEdge(0, 1)]).unwrap();
        p.wait_for(&t).unwrap();
        // Targets far past anything ever issued: must error, not block.
        let forged = Ticket::from_targets(vec![u64::MAX, u64::MAX]);
        assert!(matches!(p.wait_for(&forged), Err(GraphError::Other(_))));
        // Even one past the issued watermark is a batch that was never
        // submitted.
        let just_past: Vec<u64> = p
            .stats()
            .shards
            .iter()
            .map(|s| s.batches_submitted + 1)
            .collect();
        assert!(p.wait_for(&Ticket::from_targets(just_past)).is_err());
        // A target on a shard the pipeline does not have errors too.
        let wide = Ticket::from_targets(vec![0, 0, 0, 1]);
        assert!(p.wait_for(&wide).is_err());
        // Legitimate tickets keep working after the rejections.
        let t = p.submit(&[Update::InsertEdge(0, 2)]).unwrap();
        p.wait_for(&t).unwrap();
    }

    #[test]
    fn watermark_advances_with_drained_batches() {
        let p = pipeline_over(ShardedConfig::small_test());
        assert_eq!(p.watermark(), 0);
        let ticket = p.submit_edges(&[(0, 1), (1, 2), (2, 3)]).unwrap();
        p.wait_for(&ticket).unwrap();
        let stats = p.stats();
        assert_eq!(p.watermark(), stats.batches_drained());
        assert!(p.watermark() > 0);
    }

    #[test]
    fn shard_watermarks_move_only_for_written_shards() {
        let p = pipeline_over(ShardedConfig::small_test());
        assert_eq!(p.shard_watermarks(), vec![0, 0]);
        // Route one batch to vertex 0's shard only.
        let shard = p.graph().shard_of(0);
        let ticket = p.submit(&[Update::InsertEdge(0, 1)]).unwrap();
        p.wait_for(&ticket).unwrap();
        let marks = p.shard_watermarks();
        assert_eq!(marks[shard], 1);
        assert_eq!(marks[1 - shard], 0, "untouched lane must not move");
        assert_eq!(marks.iter().sum::<u64>(), p.watermark());
        assert_eq!(p.stats().watermarks(), marks);
    }

    #[test]
    fn registry_metrics_mirror_lane_counters() {
        let p = pipeline_over(ShardedConfig::small_test());
        let ticket = p.submit_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        p.wait_for(&ticket).unwrap();
        let snap = p.registry().snapshot();
        assert_eq!(snap.counter("pipeline_ops_submitted"), Some(4));
        assert_eq!(snap.counter("pipeline_ops_applied"), Some(4));
        assert_eq!(snap.counter("pipeline_op_errors"), Some(0));
        // Everything drained: each lane's queue-depth gauge is back at 0.
        for shard in 0..2 {
            assert_eq!(
                snap.gauge_labeled("pipeline_queue_depth", &format!("shard=\"{shard}\"")),
                Some(0),
                "lane {shard} depth"
            );
        }
        // The enqueue→drain histogram records *after* the drained watermark
        // moves (it is off the waiters' critical path), so allow it a beat.
        let expect = p.stats().batches_drained();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let count = p
                .registry()
                .snapshot()
                .histogram("pipeline_enqueue_to_drain_nanos")
                .unwrap()
                .count;
            if count == expect {
                break;
            }
            assert!(Instant::now() < deadline, "histogram never caught up");
            std::thread::yield_now();
        }
    }

    #[test]
    fn slow_drains_leave_trace_events() {
        let p = pipeline_over(ShardedConfig::small_test());
        // Zero threshold: every drained batch traces.
        p.registry().slow_ops().set_threshold_ns(0);
        let ticket = p.submit(&[Update::InsertEdge(0, 1)]).unwrap();
        p.wait_for(&ticket).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let events = p.registry().snapshot().slow_ops;
            if let Some(e) = events.first() {
                assert_eq!(e.kind, "drain_batch");
                assert!(e.shard < 2);
                assert!(e.epoch >= 1, "epoch carries the drained watermark");
                break;
            }
            assert!(Instant::now() < deadline, "no trace event arrived");
            std::thread::yield_now();
        }
    }

    #[test]
    fn tiny_queue_applies_backpressure_without_loss() {
        let cfg = ShardedConfig {
            num_shards: 2,
            queue_capacity: 1,
            batch_size: 4,
        };
        let p = pipeline_over(cfg.clone());
        let edges: Vec<Edge> = (0..500u64).map(|i| (i % 50, 63 - (i % 50))).collect();
        for chunk in edges.chunks(cfg.batch_size) {
            p.submit_edges(chunk).unwrap();
        }
        p.flush_all().unwrap();
        assert_eq!(p.graph().num_edges(), 500);
    }

    #[test]
    fn view_after_flush_sees_everything() {
        let p = pipeline_over(ShardedConfig::small_test());
        p.submit_edges(&[(3, 4), (3, 5), (4, 3)]).unwrap();
        p.flush_all().unwrap();
        let graph = p.graph();
        let view = graph.consistent_view();
        assert_eq!(view.neighbors(3), vec![4, 5]);
        assert_eq!(view.degree(4), 1);
    }

    #[test]
    #[should_panic(expected = "must match the graph")]
    fn mismatched_shard_count_is_rejected() {
        let graph = Arc::new(ShardedGraph::create_dgap_small_test(3).unwrap());
        let _ = IngestPipeline::new(graph, &ShardedConfig::small_test()); // 2 != 3
    }

    #[test]
    fn dead_worker_fails_flush_instead_of_hanging() {
        let pipeline = dead_lane_pipeline();
        // Must return an error promptly rather than spin on the dead lane.
        let err = pipeline.flush_all().unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn dead_worker_fails_submit_instead_of_panicking() {
        let pipeline = dead_lane_pipeline();
        // Producers observe the recorded error as a value, not a panic.
        let err = pipeline
            .submit(&[Update::InsertEdge(0, 2)])
            .expect_err("submit to a dead lane must fail");
        assert_eq!(err, GraphError::WorkerDied { shard: 0 });
        // And the failed call's accounting is rolled back: only the op from
        // the first (pre-death) submit remains counted.
        assert_eq!(pipeline.stats().ops_submitted(), 1);
    }

    #[test]
    fn tagged_submit_commits_and_deduplicates_replays() {
        let p = durable_pipeline_over(ShardedConfig::small_test());
        let ops = [
            Update::InsertEdge(0, 1),
            Update::InsertEdge(1, 2),
            Update::DeleteEdge(0, 1),
        ];
        assert_eq!(p.client_committed(7), None);
        let t = p.submit_tagged(&ops, 7, 1).unwrap();
        p.wait_for(&t).unwrap();
        // Fan-to-all: every shard committed op 1, so the min watermark is 1.
        assert_eq!(p.client_committed(7), Some(1));
        let records = p.graph().num_edges();
        assert_eq!(records, 3, "2 inserts + 1 tombstone record");
        // Replay of the same (client, op): acked, applied nowhere.
        let t = p.submit_tagged(&ops, 7, 1).unwrap();
        p.wait_for(&t).unwrap();
        assert_eq!(p.graph().num_edges(), records);
        assert_eq!(p.stats().replay_skips(), 2, "one skip per shard");
        assert_eq!(p.client_committed(7), Some(1));
        // A later op applies normally.
        let t = p.submit_tagged(&[Update::InsertEdge(2, 3)], 7, 2).unwrap();
        p.wait_for(&t).unwrap();
        assert_eq!(p.client_committed(7), Some(2));
        assert_eq!(p.graph().num_edges(), records + 1);
    }

    #[test]
    fn tagged_submit_needs_tables_and_nonzero_ids() {
        let plain = pipeline_over(ShardedConfig::small_test());
        assert!(matches!(
            plain.submit_tagged(&[Update::InsertVertex(0)], 1, 1),
            Err(GraphError::Unsupported(_))
        ));
        assert!(!plain.has_client_tables());
        assert_eq!(plain.client_committed(1), None);

        let durable = durable_pipeline_over(ShardedConfig::small_test());
        assert!(durable.has_client_tables());
        assert_eq!(durable.num_shards(), 2);
        for (client, op) in [(0, 1), (1, 0)] {
            assert!(matches!(
                durable.submit_tagged(&[Update::InsertVertex(0)], client, op),
                Err(GraphError::Protocol(_))
            ));
        }
    }

    #[test]
    fn crash_hook_kills_the_worker_like_a_real_crash() {
        let cfg = ShardedConfig::small_test();
        let graph = Arc::new(ShardedGraph::create_dgap_small_test(cfg.num_shards).unwrap());
        let tables = (0..cfg.num_shards)
            .map(|i| ClientTable::create_or_open(graph.shard(i).pool(), 0).unwrap())
            .collect();
        let p = IngestPipeline::with_crash_hook(
            graph,
            &cfg,
            Arc::new(Registry::new()),
            tables,
            crate::failpoint::crash_after(0),
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let t = p.submit_tagged(&[Update::InsertEdge(0, 1)], 3, 1).unwrap();
        let err = p.wait_for(&t).unwrap_err();
        std::panic::set_hook(prev);
        assert!(matches!(err, GraphError::WorkerDied { .. }), "{err}");
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let p = pipeline_over(ShardedConfig::with_shards(3));
        p.submit_edges(&[(0, 1), (1, 2), (2, 0)]).unwrap();
        drop(p); // must not hang or panic
    }
}
