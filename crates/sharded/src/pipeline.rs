//! The batched ingest pipeline: per-shard lock-free queues drained by one
//! worker thread per shard, with backpressure and a durability barrier.

use crate::graph::ShardedGraph;
use crate::queue::BatchQueue;
use crate::stats::{PipelineStats, ShardIngestStats};
use crate::{Edge, ShardedConfig};
use dgap::{DynamicGraph, GraphResult};
use error_slot::ErrorSlot;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-shard ingest lane shared between producers and the drain worker.
struct Lane {
    queue: BatchQueue<Vec<Edge>>,
    /// Edges enqueued to this lane (incremented *before* the push so the
    /// flush barrier can never observe applied > submitted-at-entry).
    submitted: AtomicU64,
    /// Edges the worker has taken out of a batch and offered to the backend
    /// (failed inserts included, so the barrier terminates).
    applied: AtomicU64,
    batches: AtomicU64,
    stalls: AtomicU64,
    errors: AtomicU64,
    /// Set when the shard's drain worker died (panicked); producers and the
    /// flush barrier must stop waiting on this lane.
    dead: AtomicBool,
}

mod error_slot {
    //! A once-set error slot: lighter than a mutex on the hot path (a single
    //! Acquire load when no error has occurred).

    use dgap::GraphError;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    #[derive(Default)]
    pub(super) struct ErrorSlot {
        any: AtomicBool,
        first: Mutex<Option<GraphError>>,
    }

    impl ErrorSlot {
        pub(super) fn record(&self, err: GraphError) {
            let mut slot = self.first.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(err);
            }
            self.any.store(true, Ordering::Release);
        }

        pub(super) fn get(&self) -> Option<GraphError> {
            if !self.any.load(Ordering::Acquire) {
                return None;
            }
            self.first.lock().unwrap_or_else(|p| p.into_inner()).clone()
        }
    }
}

struct Shared<G> {
    graph: Arc<ShardedGraph<G>>,
    lanes: Vec<Lane>,
    shutdown: AtomicBool,
    error: ErrorSlot,
}

/// A multi-producer ingest front-end for a [`ShardedGraph`].
///
/// Any number of threads may call [`IngestPipeline::submit`] concurrently;
/// each call scatters its batch by source-vertex shard and enqueues one
/// sub-batch per shard onto that shard's lock-free queue.  One worker thread
/// per shard drains its queue into the backend, so each backend instance
/// sees a single writer and zero cross-shard synchronisation.
///
/// When a shard's queue is full, `submit` spins on that shard (backpressure)
/// until the worker catches up — producers can never outrun memory.
/// [`IngestPipeline::flush_all`] is the durability barrier: it waits for
/// every edge submitted before the call to be applied, then flushes every
/// backend.
pub struct IngestPipeline<G: DynamicGraph + 'static> {
    shared: Arc<Shared<G>>,
    workers: Vec<JoinHandle<()>>,
}

impl<G: DynamicGraph + 'static> IngestPipeline<G> {
    /// Spawn one drain worker per shard of `graph`.
    pub fn new(graph: Arc<ShardedGraph<G>>, config: &ShardedConfig) -> Self {
        config.validate();
        assert_eq!(
            config.num_shards,
            graph.num_shards(),
            "ShardedConfig::num_shards must match the graph it feeds"
        );
        let lanes = (0..graph.num_shards())
            .map(|_| Lane {
                queue: BatchQueue::with_capacity(config.queue_capacity),
                submitted: AtomicU64::new(0),
                applied: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            })
            .collect();
        let shared = Arc::new(Shared {
            graph,
            lanes,
            shutdown: AtomicBool::new(false),
            error: ErrorSlot::default(),
        });
        let workers = (0..shared.graph.num_shards())
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ingest-shard-{shard}"))
                    .spawn(move || {
                        // A panicking backend must poison the lane, not
                        // silently wedge every producer and flush barrier.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            drain_worker(&shared, shard)
                        }));
                        if caught.is_err() {
                            shared.error.record(dgap::GraphError::Other(format!(
                                "ingest worker for shard {shard} panicked"
                            )));
                            shared.lanes[shard].dead.store(true, Ordering::Release);
                        }
                    })
                    .expect("spawn ingest worker")
            })
            .collect();
        IngestPipeline { shared, workers }
    }

    /// Scatter `edges` to their shards and enqueue them.  Blocks (per shard)
    /// while that shard's queue is full.
    pub fn submit(&self, edges: &[Edge]) {
        if edges.is_empty() {
            return;
        }
        let partitioner = self.shared.graph.partitioner();
        let num_shards = partitioner.num_shards();
        let mut scattered: Vec<Vec<Edge>> = vec![Vec::new(); num_shards];
        for &(src, dst) in edges {
            scattered[partitioner.shard_of(src)].push((src, dst));
        }
        for (shard, batch) in scattered.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let lane = &self.shared.lanes[shard];
            lane.submitted
                .fetch_add(batch.len() as u64, Ordering::Release);
            lane.batches.fetch_add(1, Ordering::Relaxed);
            let mut pending = batch;
            loop {
                assert!(
                    !lane.dead.load(Ordering::Acquire),
                    "ingest worker for shard {shard} died; the pipeline cannot accept more edges"
                );
                match lane.queue.push(pending) {
                    Ok(()) => break,
                    Err(back) => {
                        pending = back;
                        lane.stalls.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Durability barrier: wait until every edge submitted before this call
    /// has been applied to its backend, flush every backend, and surface the
    /// first backend error (if any insert was rejected since creation).
    pub fn flush_all(&self) -> GraphResult<()> {
        // Snapshot the submit counters first: edges submitted concurrently
        // with this call are not part of the barrier.
        let targets: Vec<u64> = self
            .shared
            .lanes
            .iter()
            .map(|l| l.submitted.load(Ordering::Acquire))
            .collect();
        for (lane, &target) in self.shared.lanes.iter().zip(&targets) {
            let mut spins = 0u32;
            while lane.applied.load(Ordering::Acquire) < target {
                if lane.dead.load(Ordering::Acquire) {
                    return Err(self
                        .shared
                        .error
                        .get()
                        .unwrap_or_else(|| dgap::GraphError::Other("ingest worker died".into())));
                }
                spins += 1;
                if spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
        self.shared.graph.flush();
        match self.shared.error.get() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// The graph this pipeline feeds.
    pub fn graph(&self) -> &Arc<ShardedGraph<G>> {
        &self.shared.graph
    }

    /// Snapshot the per-shard ingest counters.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            shards: self
                .shared
                .lanes
                .iter()
                .map(|l| ShardIngestStats {
                    edges_submitted: l.submitted.load(Ordering::Relaxed),
                    edges_applied: l.applied.load(Ordering::Relaxed),
                    batches_submitted: l.batches.load(Ordering::Relaxed),
                    backpressure_stalls: l.stalls.load(Ordering::Relaxed),
                    insert_errors: l.errors.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl<G: DynamicGraph + 'static> Drop for IngestPipeline<G> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn drain_worker<G: DynamicGraph>(shared: &Shared<G>, shard: usize) {
    let backend = shared.graph.shard_arc(shard);
    let lane = &shared.lanes[shard];
    let mut idle_spins = 0u32;
    loop {
        match lane.queue.pop() {
            Some(batch) => {
                idle_spins = 0;
                for (src, dst) in &batch {
                    if let Err(err) = backend.insert_edge(*src, *dst) {
                        lane.errors.fetch_add(1, Ordering::Relaxed);
                        shared.error.record(err);
                    }
                }
                lane.applied
                    .fetch_add(batch.len() as u64, Ordering::Release);
            }
            None => {
                // Queue drained: exit once producers are done, otherwise
                // back off (spin briefly, then sleep).
                if shared.shutdown.load(Ordering::Acquire) && lane.queue.is_empty() {
                    break;
                }
                idle_spins += 1;
                if idle_spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::{GraphView, SnapshotSource};

    fn pipeline_over(cfg: ShardedConfig) -> IngestPipeline<dgap::Dgap> {
        let graph = Arc::new(ShardedGraph::create_dgap_small_test(cfg.num_shards).unwrap());
        IngestPipeline::new(graph, &cfg)
    }

    #[test]
    fn ingests_and_flushes() {
        let p = pipeline_over(ShardedConfig::small_test());
        let edges: Vec<Edge> = (0..40u64).map(|i| (i % 10, (i + 1) % 10)).collect();
        p.submit(&edges);
        p.flush_all().unwrap();
        assert_eq!(p.graph().num_edges(), 40);
        let stats = p.stats();
        assert_eq!(stats.edges_submitted(), 40);
        assert_eq!(stats.edges_applied(), 40);
        assert_eq!(stats.insert_errors(), 0);
    }

    #[test]
    fn tiny_queue_applies_backpressure_without_loss() {
        let cfg = ShardedConfig {
            num_shards: 2,
            queue_capacity: 1,
            batch_size: 4,
        };
        let p = pipeline_over(cfg.clone());
        let edges: Vec<Edge> = (0..500u64).map(|i| (i % 50, 63 - (i % 50))).collect();
        for chunk in edges.chunks(cfg.batch_size) {
            p.submit(chunk);
        }
        p.flush_all().unwrap();
        assert_eq!(p.graph().num_edges(), 500);
    }

    #[test]
    fn view_after_flush_sees_everything() {
        let p = pipeline_over(ShardedConfig::small_test());
        p.submit(&[(3, 4), (3, 5), (4, 3)]);
        p.flush_all().unwrap();
        let graph = p.graph();
        let view = graph.consistent_view();
        assert_eq!(view.neighbors(3), vec![4, 5]);
        assert_eq!(view.degree(4), 1);
    }

    #[test]
    #[should_panic(expected = "must match the graph")]
    fn mismatched_shard_count_is_rejected() {
        let graph = Arc::new(ShardedGraph::create_dgap_small_test(3).unwrap());
        let _ = IngestPipeline::new(graph, &ShardedConfig::small_test()); // 2 != 3
    }

    #[test]
    fn dead_worker_fails_flush_instead_of_hanging() {
        struct PanicGraph;
        impl DynamicGraph for PanicGraph {
            fn insert_vertex(&self, _v: u64) -> GraphResult<()> {
                Ok(())
            }
            fn insert_edge(&self, _s: u64, _d: u64) -> GraphResult<()> {
                panic!("backend blew up");
            }
            fn num_vertices(&self) -> usize {
                0
            }
            fn num_edges(&self) -> usize {
                0
            }
            fn flush(&self) {}
            fn system_name(&self) -> &'static str {
                "panic"
            }
        }
        let graph = Arc::new(ShardedGraph::new(1, |_| Ok(PanicGraph)).unwrap());
        let pipeline = IngestPipeline::new(graph, &ShardedConfig::with_shards(1));
        pipeline.submit(&[(0, 1)]);
        // Must return an error promptly rather than spin on the dead lane.
        let err = pipeline.flush_all().unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let p = pipeline_over(ShardedConfig::with_shards(3));
        p.submit(&[(0, 1), (1, 2), (2, 0)]);
        drop(p); // must not hang or panic
    }
}
