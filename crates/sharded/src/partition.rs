//! Vertex-to-shard assignment.

use dgap::VertexId;

/// Hash-partitions vertex ids across a fixed number of shards.
///
/// The assignment must be cheap (it sits on the per-edge ingest hot path),
/// deterministic (the read path recomputes it to route queries) and robust
/// against structured id spaces — synthetic generators and pre-processed
/// datasets both hand out dense sequential ids, so a plain `v % n` would put
/// all of an R-MAT quadrant's hubs in the same shard for power-of-two `n`.
/// A Fibonacci multiplicative hash scrambles the id first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    num_shards: usize,
}

/// 2^64 / φ, the usual Fibonacci-hash multiplier.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl Partitioner {
    /// A partitioner over `num_shards` shards (must be nonzero).
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "a graph needs at least one shard");
        Partitioner { num_shards }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning vertex `v` (and therefore every edge whose source
    /// is `v`).
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        if self.num_shards == 1 {
            return 0;
        }
        let mixed = v.wrapping_mul(GOLDEN_GAMMA);
        ((mixed >> 32) as usize) % self.num_shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_takes_everything() {
        let p = Partitioner::new(1);
        assert!((0..1000u64).all(|v| p.shard_of(v) == 0));
    }

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let p = Partitioner::new(7);
        for v in 0..10_000u64 {
            let s = p.shard_of(v);
            assert!(s < 7);
            assert_eq!(s, p.shard_of(v));
        }
    }

    #[test]
    fn sequential_ids_spread_roughly_evenly() {
        for shards in [2usize, 4, 8] {
            let p = Partitioner::new(shards);
            let mut counts = vec![0usize; shards];
            let n = 100_000u64;
            for v in 0..n {
                counts[p.shard_of(v)] += 1;
            }
            let ideal = n as usize / shards;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c > ideal * 8 / 10 && c < ideal * 12 / 10,
                    "shard {s} of {shards} got {c} vertices (ideal {ideal})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Partitioner::new(0);
    }
}
