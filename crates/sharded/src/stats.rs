//! Ingest-pipeline statistics.

/// Counters for one shard's ingest lane.
///
/// Since the pipeline carries typed [`dgap::Update`] batches, the counters
/// are denominated in *operations* (inserts **and** deletes), not edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardIngestStats {
    /// Operations routed to this shard by `submit`.
    pub ops_submitted: u64,
    /// Operations the shard worker has taken out of a batch and offered to
    /// the backend (failed ones included, so the drain barrier always
    /// terminates).
    pub ops_applied: u64,
    /// Edge deletions among the applied operations.
    pub deletes_applied: u64,
    /// Batches enqueued to this shard.
    pub batches_submitted: u64,
    /// Batches the worker has fully applied (the lane's ticket watermark).
    pub batches_drained: u64,
    /// Times a producer found this shard's queue full and had to wait
    /// (backpressure events).
    pub backpressure_stalls: u64,
    /// Operations the backend rejected.
    pub op_errors: u64,
    /// Tagged batches skipped whole because their `(client, op)` was already
    /// committed on this shard (exactly-once replay deduplication).
    pub replay_skips: u64,
}

/// Aggregated pipeline statistics (sum over shards).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardIngestStats>,
}

impl PipelineStats {
    /// Total operations routed into the pipeline.
    pub fn ops_submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.ops_submitted).sum()
    }

    /// Total operations applied to backends.
    pub fn ops_applied(&self) -> u64 {
        self.shards.iter().map(|s| s.ops_applied).sum()
    }

    /// Total edge deletions applied.
    pub fn deletes_applied(&self) -> u64 {
        self.shards.iter().map(|s| s.deletes_applied).sum()
    }

    /// Total batches enqueued.
    pub fn batches_submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.batches_submitted).sum()
    }

    /// Total batches fully applied across shards (the pipeline's write
    /// watermark, as reported by [`crate::IngestPipeline::watermark`]).
    pub fn batches_drained(&self) -> u64 {
        self.shards.iter().map(|s| s.batches_drained).sum()
    }

    /// Per-shard drained-batch counts in shard order — the same numbers
    /// [`crate::IngestPipeline::shard_watermarks`] reports live, as seen at
    /// the moment these stats were snapshotted.
    pub fn watermarks(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.batches_drained).collect()
    }

    /// Total backpressure events across shards.
    pub fn backpressure_stalls(&self) -> u64 {
        self.shards.iter().map(|s| s.backpressure_stalls).sum()
    }

    /// Total rejected operations across shards.
    pub fn op_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.op_errors).sum()
    }

    /// Total replayed tagged batches deduplicated across shards.
    pub fn replay_skips(&self) -> u64 {
        self.shards.iter().map(|s| s.replay_skips).sum()
    }

    /// Ratio of the busiest shard's submitted operations to the ideal even
    /// share — 1.0 is perfectly balanced.  Returns 0.0 before any ingest.
    pub fn skew(&self) -> f64 {
        let total = self.ops_submitted();
        if total == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let max = self
            .shards
            .iter()
            .map(|s| s.ops_submitted)
            .max()
            .unwrap_or(0);
        let ideal = total as f64 / self.shards.len() as f64;
        max as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_shards() {
        let stats = PipelineStats {
            shards: vec![
                ShardIngestStats {
                    ops_submitted: 30,
                    ops_applied: 30,
                    deletes_applied: 5,
                    batches_submitted: 3,
                    batches_drained: 3,
                    backpressure_stalls: 1,
                    op_errors: 0,
                    replay_skips: 2,
                },
                ShardIngestStats {
                    ops_submitted: 10,
                    ops_applied: 9,
                    deletes_applied: 0,
                    batches_submitted: 1,
                    batches_drained: 0,
                    backpressure_stalls: 0,
                    op_errors: 1,
                    replay_skips: 0,
                },
            ],
        };
        assert_eq!(stats.ops_submitted(), 40);
        assert_eq!(stats.ops_applied(), 39);
        assert_eq!(stats.deletes_applied(), 5);
        assert_eq!(stats.batches_submitted(), 4);
        assert_eq!(stats.batches_drained(), 3);
        assert_eq!(stats.backpressure_stalls(), 1);
        assert_eq!(stats.op_errors(), 1);
        assert_eq!(stats.replay_skips(), 2);
        // busiest shard has 30 of 40; ideal share is 20.
        assert!((stats.skew() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_quiet() {
        let stats = PipelineStats::default();
        assert_eq!(stats.ops_submitted(), 0);
        assert_eq!(stats.skew(), 0.0);
    }
}
