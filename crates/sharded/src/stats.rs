//! Ingest-pipeline statistics.

/// Counters for one shard's ingest lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardIngestStats {
    /// Edges routed to this shard by `submit`.
    pub edges_submitted: u64,
    /// Edges the shard worker has applied to the backend (failed inserts
    /// included, so that the drain barrier always terminates).
    pub edges_applied: u64,
    /// Batches enqueued to this shard.
    pub batches_submitted: u64,
    /// Times a producer found this shard's queue full and had to wait
    /// (backpressure events).
    pub backpressure_stalls: u64,
    /// Edge inserts the backend rejected.
    pub insert_errors: u64,
}

/// Aggregated pipeline statistics (sum over shards).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardIngestStats>,
}

impl PipelineStats {
    /// Total edges routed into the pipeline.
    pub fn edges_submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.edges_submitted).sum()
    }

    /// Total edges applied to backends.
    pub fn edges_applied(&self) -> u64 {
        self.shards.iter().map(|s| s.edges_applied).sum()
    }

    /// Total batches enqueued.
    pub fn batches_submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.batches_submitted).sum()
    }

    /// Total backpressure events across shards.
    pub fn backpressure_stalls(&self) -> u64 {
        self.shards.iter().map(|s| s.backpressure_stalls).sum()
    }

    /// Total rejected inserts across shards.
    pub fn insert_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.insert_errors).sum()
    }

    /// Ratio of the busiest shard's submitted edges to the ideal even
    /// share — 1.0 is perfectly balanced.  Returns 0.0 before any ingest.
    pub fn skew(&self) -> f64 {
        let total = self.edges_submitted();
        if total == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let max = self
            .shards
            .iter()
            .map(|s| s.edges_submitted)
            .max()
            .unwrap_or(0);
        let ideal = total as f64 / self.shards.len() as f64;
        max as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_shards() {
        let stats = PipelineStats {
            shards: vec![
                ShardIngestStats {
                    edges_submitted: 30,
                    edges_applied: 30,
                    batches_submitted: 3,
                    backpressure_stalls: 1,
                    insert_errors: 0,
                },
                ShardIngestStats {
                    edges_submitted: 10,
                    edges_applied: 9,
                    batches_submitted: 1,
                    backpressure_stalls: 0,
                    insert_errors: 1,
                },
            ],
        };
        assert_eq!(stats.edges_submitted(), 40);
        assert_eq!(stats.edges_applied(), 39);
        assert_eq!(stats.batches_submitted(), 4);
        assert_eq!(stats.backpressure_stalls(), 1);
        assert_eq!(stats.insert_errors(), 1);
        // busiest shard has 30 of 40; ideal share is 20.
        assert!((stats.skew() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_quiet() {
        let stats = PipelineStats::default();
        assert_eq!(stats.edges_submitted(), 0);
        assert_eq!(stats.skew(), 0.0);
    }
}
