//! Betweenness centrality (GAPBS `bc`): Brandes' algorithm from a single
//! source, the approximation the paper's Table 1 lists ("Brandes approx.
//! algorithm" with one source vertex).
//!
//! The forward phase is a level-synchronous BFS that counts shortest paths
//! (`sigma`); the backward phase walks the levels in reverse accumulating
//! dependencies (`delta`).  The parallel variant parallelises both phases
//! per level; dependency accumulation uses an atomic compare-exchange loop
//! on the `f64` bit pattern, the standard trick for atomic floating-point
//! adds.

use dgap::chunks::ranges;
use dgap::{CsrView, GraphView, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sequential Brandes betweenness centrality from `source`.  Returns one
/// (unnormalised) centrality score per vertex.
pub fn bc(view: &impl GraphView, source: VertexId) -> Vec<f64> {
    let n = view.num_vertices();
    let mut centrality = vec![0.0f64; n];
    if n == 0 || source as usize >= n {
        return centrality;
    }
    let mut sigma = vec![0.0f64; n];
    let mut depth = vec![-1i64; n];
    sigma[source as usize] = 1.0;
    depth[source as usize] = 0;

    // Forward: level-synchronous BFS recording shortest-path counts.
    let mut levels: Vec<Vec<VertexId>> = vec![vec![source]];
    loop {
        let frontier = levels.last().unwrap();
        let d = levels.len() as i64;
        let mut next = Vec::new();
        for &v in frontier {
            let sv = sigma[v as usize];
            view.for_each_neighbor(v, &mut |u| {
                let ui = u as usize;
                if depth[ui] == -1 {
                    depth[ui] = d;
                    next.push(u);
                }
                if depth[ui] == d {
                    sigma[ui] += sv;
                }
            });
        }
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }

    // Backward: accumulate dependencies level by level.
    let mut delta = vec![0.0f64; n];
    for level in levels.iter().rev() {
        for &v in level {
            let vi = v as usize;
            let dv = depth[vi];
            let mut acc = 0.0;
            view.for_each_neighbor(v, &mut |u| {
                let ui = u as usize;
                if depth[ui] == dv + 1 && sigma[ui] > 0.0 {
                    acc += sigma[vi] / sigma[ui] * (1.0 + delta[ui]);
                }
            });
            delta[vi] = acc;
            if v != source {
                centrality[vi] += acc;
            }
        }
    }
    centrality
}

fn atomic_add_f64(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + add;
        match cell.compare_exchange(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Rayon-parallel Brandes betweenness centrality.  Produces the same scores
/// as [`bc`] up to floating-point reassociation.
pub fn bc_parallel(view: &impl GraphView, source: VertexId) -> Vec<f64> {
    let n = view.num_vertices();
    if n == 0 || source as usize >= n {
        return vec![0.0; n];
    }
    let sigma: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    let depth: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    sigma[source as usize].store(1f64.to_bits(), Ordering::Relaxed);
    depth[source as usize].store(0, Ordering::Relaxed);

    let mut levels: Vec<Vec<VertexId>> = vec![vec![source]];
    loop {
        let frontier = levels.last().unwrap();
        let d = levels.len() as u64;
        // Discover the next level (claim via CAS on depth).
        let next: Vec<VertexId> = frontier
            .par_iter()
            .flat_map_iter(|&v| {
                let mut claimed = Vec::new();
                view.for_each_neighbor(v, &mut |u| {
                    if depth[u as usize]
                        .compare_exchange(u64::MAX, d, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        claimed.push(u);
                    }
                });
                claimed.into_iter()
            })
            .collect();
        // Accumulate path counts into the new level.
        frontier.par_iter().for_each(|&v| {
            let sv = f64::from_bits(sigma[v as usize].load(Ordering::Relaxed));
            view.for_each_neighbor(v, &mut |u| {
                if depth[u as usize].load(Ordering::Relaxed) == d {
                    atomic_add_f64(&sigma[u as usize], sv);
                }
            });
        });
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }

    let delta: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    let centrality: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    for (li, level) in levels.iter().enumerate().rev() {
        let d = li as u64;
        level.par_iter().for_each(|&v| {
            let vi = v as usize;
            let sv = f64::from_bits(sigma[vi].load(Ordering::Relaxed));
            let mut acc = 0.0;
            view.for_each_neighbor(v, &mut |u| {
                let ui = u as usize;
                if depth[ui].load(Ordering::Relaxed) == d + 1 {
                    let su = f64::from_bits(sigma[ui].load(Ordering::Relaxed));
                    if su > 0.0 {
                        let du = f64::from_bits(delta[ui].load(Ordering::Relaxed));
                        acc += sv / su * (1.0 + du);
                    }
                }
            });
            delta[vi].store(acc.to_bits(), Ordering::Relaxed);
            if v != source {
                atomic_add_f64(&centrality[vi], acc);
            }
        });
    }
    centrality
        .into_iter()
        .map(|c| f64::from_bits(c.into_inner()))
        .collect()
}

/// Zero-dispatch Brandes betweenness centrality over a CSR view: both the
/// level-synchronous forward phase and the reverse dependency accumulation
/// iterate borrowed neighbour slices, chunked per level on the
/// work-stealing pool.  Same scores as [`bc`] / [`bc_parallel`] up to
/// floating-point reassociation (the atomic adds).
pub fn bc_csr(view: &impl CsrView, source: VertexId) -> Vec<f64> {
    let n = view.num_vertices();
    if n == 0 || source as usize >= n {
        return vec![0.0; n];
    }
    let sigma: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    let depth: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    sigma[source as usize].store(1f64.to_bits(), Ordering::Relaxed);
    depth[source as usize].store(0, Ordering::Relaxed);

    let mut levels: Vec<Vec<VertexId>> = vec![vec![source]];
    loop {
        let frontier = levels.last().unwrap();
        let d = levels.len() as u64;
        let next: Vec<VertexId> = ranges(frontier.len())
            .into_par_iter()
            .flat_map_iter(|(lo, hi)| {
                let mut claimed = Vec::new();
                for &v in &frontier[lo..hi] {
                    for &u in view.neighbor_slice(v) {
                        if depth[u as usize]
                            .compare_exchange(u64::MAX, d, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            claimed.push(u);
                        }
                    }
                }
                claimed
            })
            .collect();
        ranges(frontier.len()).into_par_iter().for_each(|(lo, hi)| {
            for &v in &frontier[lo..hi] {
                let sv = f64::from_bits(sigma[v as usize].load(Ordering::Relaxed));
                for &u in view.neighbor_slice(v) {
                    if depth[u as usize].load(Ordering::Relaxed) == d {
                        atomic_add_f64(&sigma[u as usize], sv);
                    }
                }
            }
        });
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }

    let delta: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    let centrality: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    for (li, level) in levels.iter().enumerate().rev() {
        let d = li as u64;
        ranges(level.len()).into_par_iter().for_each(|(lo, hi)| {
            for &v in &level[lo..hi] {
                let vi = v as usize;
                let sv = f64::from_bits(sigma[vi].load(Ordering::Relaxed));
                let mut acc = 0.0;
                for &u in view.neighbor_slice(v) {
                    let ui = u as usize;
                    if depth[ui].load(Ordering::Relaxed) == d + 1 {
                        let su = f64::from_bits(sigma[ui].load(Ordering::Relaxed));
                        if su > 0.0 {
                            let du = f64::from_bits(delta[ui].load(Ordering::Relaxed));
                            acc += sv / su * (1.0 + du);
                        }
                    }
                }
                delta[vi].store(acc.to_bits(), Ordering::Relaxed);
                if v != source {
                    atomic_add_f64(&centrality[vi], acc);
                }
            }
        });
    }
    centrality
        .into_iter()
        .map(|c| f64::from_bits(c.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{path4, two_triangles};
    use dgap::ReferenceGraph;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn path_graph_centrality_from_endpoint() {
        // Path 0-1-2-3, source 0: vertex 1 lies on paths to 2 and 3 (delta
        // 2), vertex 2 on the path to 3 (delta 1), endpoints get 0.
        let g = path4();
        let c = bc(&g, 0);
        assert_close(&c, &[0.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn bridge_vertices_score_highest() {
        let g = two_triangles();
        let c = bc(&g, 0);
        // Vertices 2 and 3 bridge the two triangles: every path from 0 to
        // {4, 5} crosses them.
        assert!(c[2] > c[1]);
        assert!(c[3] > c[4]);
        assert_eq!(c[6], 0.0, "isolated vertex");
    }

    #[test]
    fn parallel_matches_sequential() {
        for source in [0u64, 2, 3] {
            let g = two_triangles();
            assert_close(&bc(&g, source), &bc_parallel(&g, source));
        }
        let g = path4();
        assert_close(&bc(&g, 1), &bc_parallel(&g, 1));
    }

    #[test]
    fn star_centre_dominates() {
        let mut g = ReferenceGraph::new(6);
        for v in 1..6u64 {
            g.add_edge(0, v);
            g.add_edge(v, 0);
        }
        let c = bc(&g, 1);
        assert!(c[0] > 0.0);
        for &leaf in &c[2..6] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    fn out_of_range_source_and_empty_graph() {
        let g = path4();
        assert!(bc(&g, 50).iter().all(|&x| x == 0.0));
        let e = ReferenceGraph::new(0);
        assert!(bc(&e, 0).is_empty());
        assert!(bc_parallel(&e, 0).is_empty());
        let frozen = dgap::FrozenView::capture(&e);
        assert!(bc_csr(&frozen, 0).is_empty());
        assert!(bc_csr(&dgap::FrozenView::capture(&g), 50)
            .iter()
            .all(|&x| x == 0.0));
    }

    #[test]
    fn csr_kernel_matches_sequential_scores() {
        use dgap::FrozenView;
        for source in [0u64, 2, 3] {
            let frozen = FrozenView::capture(&two_triangles());
            assert_close(&bc(&frozen, source), &bc_csr(&frozen, source));
        }
        let frozen = FrozenView::capture(&path4());
        assert_close(&bc(&frozen, 1), &bc_csr(&frozen, 1));
    }
}
