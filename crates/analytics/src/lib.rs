//! # analytics — GAPBS-style graph kernels over [`GraphView`]
//!
//! The paper evaluates every system with the same four kernels from the GAP
//! Benchmark Suite (Table 1):
//!
//! | Kernel | Type | Notes |
//! |--------|------|-------|
//! | [`pagerank()`] | link analysis | fixed 20 iterations, damping 0.85 |
//! | [`bfs()`] | traversal | direction-optimizing (Beamer et al.) |
//! | [`bc()`] | shortest paths | Brandes, single source |
//! | [`cc()`] | connectivity | Shiloach–Vishkin style label propagation |
//!
//! All kernels are generic over [`GraphView`], so they run unchanged on
//! DGAP, on every baseline system, and on the in-memory
//! [`dgap::ReferenceGraph`] used as the test oracle.  Each kernel has a
//! sequential implementation and a rayon-parallel one (`*_parallel`); the
//! benchmark harness picks the parallel variant and sizes the rayon pool to
//! the requested thread count.
//!
//! Views that expose flat CSR arrays ([`dgap::CsrView`]: `FrozenView`, the
//! `sharded` crate's unified cross-shard snapshot) additionally get
//! **zero-dispatch** `*_csr` variants: the hot loops iterate borrowed
//! neighbour slices directly, chunked over the work-stealing pool, instead
//! of paying a virtual `&mut dyn FnMut` call per edge through
//! [`GraphView::for_each_neighbor`].  Each `*_csr` kernel produces the same
//! answers as its dyn siblings (bit-identical ranks for `pagerank_csr`,
//! identical labels for `cc_csr`, identical reached sets/distances for
//! `bfs_csr`); `tests/analytics_csr_parity.rs` and the `dgap-bench
//! analytics` experiment pin parity and the speedup respectively.
//!
//! Beyond the paper's four kernels, the CSR plane carries a wider serving
//! set — [`triangle_count_csr`], [`k_core_csr`], [`top_k_degree`] /
//! [`top_k_pagerank`], [`khop_neighborhood_csr`] — and an **incremental**
//! plane ([`incremental`]): [`pagerank_incremental`] / [`cc_incremental`]
//! seed from the previous epoch's result (the [`RankCache`] trajectory,
//! the old label vector) and re-relax only the neighbourhood of the
//! vertices whose adjacency changed, falling back to the full kernels
//! when the delta is too large or unsafe (see the module docs for the
//! exact contracts).
//!
//! Like GAPBS (and the paper's evaluation, which feeds every system the
//! same pre-processed inputs), the kernels treat the neighbour lists as the
//! adjacency of an undirected graph: PageRank pulls contributions over the
//! same lists it pushes to, and the bottom-up BFS step checks a vertex's
//! out-neighbours for frontier membership.  The synthetic workloads insert
//! each edge in both directions when symmetry matters (see the `workloads`
//! crate and EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod incremental;
pub mod kcore;
pub mod khop;
pub mod pagerank;
pub mod topk;
pub mod triangles;

pub use bc::{bc, bc_csr, bc_parallel};
pub use bfs::{bfs, bfs_csr, bfs_parallel};
pub use cc::{cc, cc_csr, cc_parallel};
pub use incremental::{
    cc_incremental, pagerank_csr_recording, pagerank_incremental, IncrementalRun, RankCache,
    INCREMENTAL_FALLBACK_FRACTION, INCREMENTAL_PRUNE_TOLERANCE,
};
pub use kcore::k_core_csr;
pub use khop::khop_neighborhood_csr;
pub use pagerank::{pagerank, pagerank_csr, pagerank_parallel};
pub use topk::{top_k_degree, top_k_pagerank};
pub use triangles::triangle_count_csr;

use dgap::{GraphView, VertexId};
use rayon::prelude::*;
use std::cmp::Reverse;

/// Pick the highest-out-degree vertex as the traversal source, the common
/// GAPBS convention for reproducible BFS / BC runs.  Ties break towards the
/// lowest vertex id, so the choice is deterministic across runs and systems.
///
/// The scan is rayon-parallel: the benchmark harness calls this once per
/// trial on multi-million-vertex views, and `degree(v)` is not free on
/// every backend (LLAMA-like snapshots walk deltas, for instance).
pub fn highest_degree_vertex(view: &impl GraphView) -> VertexId {
    let n = view.num_vertices() as u64;
    (0..n)
        .into_par_iter()
        .map(|v| (view.degree(v), Reverse(v)))
        .max()
        .map(|(_, Reverse(v))| v)
        .unwrap_or(0)
}

/// Run `f` inside a rayon pool with `threads` worker threads.  Convenience
/// wrapper used by benchmarks and tests so kernels always see a pool of the
/// requested size regardless of the global default.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

#[cfg(test)]
pub(crate) mod testutil {
    use dgap::ReferenceGraph;

    /// A small undirected test graph: two triangles bridged by one edge,
    /// plus an isolated vertex.
    ///
    /// ```text
    ///   0 - 1       4 - 5
    ///    \  |       |  /
    ///      2 ------ 3          6 (isolated)
    /// ```
    pub fn two_triangles() -> ReferenceGraph {
        let mut g = ReferenceGraph::new(7);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        g
    }

    /// A directed path 0 -> 1 -> 2 -> 3 (inserted symmetrically).
    pub fn path4() -> ReferenceGraph {
        let mut g = ReferenceGraph::new(4);
        for &(a, b) in &[(0, 1), (1, 2), (2, 3)] {
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::two_triangles;

    #[test]
    fn highest_degree_vertex_finds_the_hub() {
        let g = two_triangles();
        // Vertices 2 and 3 both have degree 3; the first one wins.
        assert_eq!(highest_degree_vertex(&g), 2);
    }

    #[test]
    fn highest_degree_vertex_breaks_ties_towards_lowest_id() {
        use dgap::ReferenceGraph;
        // Vertices 1, 4 and 9 all reach the same top degree (2); the lowest
        // id must win regardless of construction order.
        let mut g = ReferenceGraph::new(10);
        for &hub in &[9u64, 4, 1] {
            g.add_edge(hub, 0);
            g.add_edge(hub, 5);
        }
        assert_eq!(highest_degree_vertex(&g), 1);
        // Also pinned: the empty graph maps to vertex 0.
        assert_eq!(highest_degree_vertex(&ReferenceGraph::new(0)), 0);
    }

    #[test]
    fn with_threads_runs_the_closure() {
        let x = with_threads(2, rayon::current_num_threads);
        assert_eq!(x, 2);
    }
}
