//! k-hop neighbourhood: every vertex reachable from a source within a
//! bounded number of hops — the "who is near this account" shape behind
//! friend-of-friend recommendations and blast-radius queries.
//!
//! Level-synchronous BFS truncated at `depth`.  Small frontiers expand
//! serially (most k-hop queries are local); once a frontier is large the
//! neighbour gather runs in parallel frontier chunks and the visited-set
//! dedup stays serial — the gather touches the edges, the dedup only the
//! candidates.

use dgap::chunks::ranges;
use dgap::{CsrView, VertexId};
use rayon::prelude::*;

/// Frontiers at or above this size gather their neighbours in parallel.
const PARALLEL_FRONTIER: usize = 1024;

/// All vertices within `depth` hops of `source` (including `source`
/// itself), ascending.  An out-of-range source has no neighbourhood.
pub fn khop_neighborhood_csr(view: &impl CsrView, source: VertexId, depth: usize) -> Vec<VertexId> {
    let n = view.num_vertices();
    if (source as usize) >= n {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    visited[source as usize] = true;
    let mut reached = vec![source];
    let mut frontier = vec![source];
    let mut next: Vec<VertexId> = Vec::new();
    for _ in 0..depth {
        if frontier.is_empty() {
            break;
        }
        if frontier.len() < PARALLEL_FRONTIER {
            next.clear();
            for &v in &frontier {
                for &u in view.neighbor_slice(v) {
                    if !visited[u as usize] {
                        visited[u as usize] = true;
                        next.push(u);
                    }
                }
            }
        } else {
            // Parallel gather over frontier chunks (candidates may repeat
            // across chunks), serial dedup against the visited set.
            let visited_ref = &visited;
            let frontier_ref = &frontier;
            let candidates: Vec<Vec<VertexId>> = ranges(frontier.len())
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut local = Vec::new();
                    for &v in &frontier_ref[lo..hi] {
                        for &u in view.neighbor_slice(v) {
                            if !visited_ref[u as usize] {
                                local.push(u);
                            }
                        }
                    }
                    local
                })
                .collect();
            next.clear();
            for local in candidates {
                for u in local {
                    if !visited[u as usize] {
                        visited[u as usize] = true;
                        next.push(u);
                    }
                }
            }
        }
        reached.extend_from_slice(&next);
        std::mem::swap(&mut frontier, &mut next);
    }
    reached.sort_unstable();
    reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{path4, two_triangles};
    use dgap::{FrozenView, GraphView, ReferenceGraph};

    #[test]
    fn hops_expand_along_the_path() {
        let frozen = FrozenView::capture(&path4());
        assert_eq!(khop_neighborhood_csr(&frozen, 0, 0), vec![0]);
        assert_eq!(khop_neighborhood_csr(&frozen, 0, 1), vec![0, 1]);
        assert_eq!(khop_neighborhood_csr(&frozen, 0, 2), vec![0, 1, 2]);
        assert_eq!(khop_neighborhood_csr(&frozen, 0, 3), vec![0, 1, 2, 3]);
        // Depth past the diameter saturates the component.
        assert_eq!(khop_neighborhood_csr(&frozen, 0, 1000), vec![0, 1, 2, 3]);
    }

    #[test]
    fn neighbourhood_stops_at_component_boundaries() {
        let frozen = FrozenView::capture(&two_triangles());
        // Vertex 6 is isolated: its k-hop ball is itself at any depth.
        assert_eq!(khop_neighborhood_csr(&frozen, 6, 5), vec![6]);
        // The bridged triangles are all within 3 hops of vertex 0.
        assert_eq!(khop_neighborhood_csr(&frozen, 0, 3), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn out_of_range_sources_have_no_neighbourhood() {
        let frozen = FrozenView::capture(&path4());
        assert!(khop_neighborhood_csr(&frozen, 99, 2).is_empty());
        assert!(khop_neighborhood_csr(&frozen, u64::MAX, 2).is_empty());
        let empty = FrozenView::capture(&ReferenceGraph::new(0));
        assert!(khop_neighborhood_csr(&empty, 0, 1).is_empty());
    }

    #[test]
    fn matches_a_distance_oracle_on_a_random_graph() {
        let mut g = ReferenceGraph::new(120);
        let mut x = 33u64;
        for _ in 0..240 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % 120;
            let b = (x >> 11) % 120;
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        let frozen = FrozenView::capture(&g);
        // Oracle: plain BFS distances, then filter.
        let mut dist = vec![usize::MAX; 120];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([0u64]);
        while let Some(v) = q.pop_front() {
            for u in g.neighbors(v) {
                if dist[u as usize] == usize::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        for depth in [0usize, 1, 2, 4] {
            let expect: Vec<u64> = (0..120u64).filter(|&v| dist[v as usize] <= depth).collect();
            assert_eq!(
                khop_neighborhood_csr(&frozen, 0, depth),
                expect,
                "d {depth}"
            );
        }
    }
}
