//! PageRank with a fixed iteration count (GAPBS `pr`, Table 1: 20
//! iterations, damping factor 0.85).

use dgap::chunks::{ranges, SendPtr};
use dgap::{CsrView, GraphView};
use rayon::prelude::*;

/// Damping factor used by the paper's GAPBS configuration.
pub const DAMPING: f64 = 0.85;

/// Default iteration count (Table 1).
pub const DEFAULT_ITERATIONS: usize = 20;

/// Sequential PageRank: returns one rank per vertex after `iterations`
/// pull-style iterations.
pub fn pagerank(view: &impl GraphView, iterations: usize) -> Vec<f64> {
    let n = view.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - DAMPING) / n as f64;
    let mut ranks = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iterations {
        for (v, c) in contrib.iter_mut().enumerate() {
            let d = view.degree(v as u64);
            *c = if d == 0 { 0.0 } else { ranks[v] / d as f64 };
        }
        for (v, r) in ranks.iter_mut().enumerate() {
            let mut sum = 0.0;
            view.for_each_neighbor(v as u64, &mut |u| {
                sum += contrib[u as usize];
            });
            *r = base + DAMPING * sum;
        }
    }
    ranks
}

/// Rayon-parallel PageRank; numerically identical to [`pagerank`] (the pull
/// model writes each vertex's rank exactly once per iteration, so no atomics
/// are needed).
pub fn pagerank_parallel(view: &impl GraphView, iterations: usize) -> Vec<f64> {
    let n = view.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - DAMPING) / n as f64;
    let mut ranks = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iterations {
        contrib.par_iter_mut().enumerate().for_each(|(v, c)| {
            let d = view.degree(v as u64);
            *c = if d == 0 { 0.0 } else { ranks[v] / d as f64 };
        });
        ranks.par_iter_mut().enumerate().for_each(|(v, r)| {
            let mut sum = 0.0;
            view.for_each_neighbor(v as u64, &mut |u| {
                sum += contrib[u as usize];
            });
            *r = base + DAMPING * sum;
        });
    }
    ranks
}

/// Zero-dispatch PageRank over a CSR view: both passes iterate borrowed
/// neighbour slices in vertex chunks on the work-stealing pool — no
/// per-edge closure, no per-vertex combinator item.  Bit-identical to
/// [`pagerank`] and [`pagerank_parallel`]: each vertex's contribution sum
/// accumulates left-to-right over the same neighbour order, and every rank
/// is written exactly once per iteration.
pub fn pagerank_csr(view: &impl CsrView, iterations: usize) -> Vec<f64> {
    let n = view.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - DAMPING) / n as f64;
    let mut ranks = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    let chunk_ranges = ranges(n);
    for _ in 0..iterations {
        {
            let ranks = &ranks;
            let dst = SendPtr(contrib.as_mut_ptr());
            chunk_ranges.par_iter().for_each(|&(lo, hi)| {
                for (off, &rank) in ranks[lo..hi].iter().enumerate() {
                    let v = lo + off;
                    let d = view.neighbor_slice(v as u64).len();
                    let c = if d == 0 { 0.0 } else { rank / d as f64 };
                    // Chunks are disjoint: each index is written once.
                    unsafe { *dst.get().add(v) = c };
                }
            });
        }
        {
            let contrib = &contrib;
            let dst = SendPtr(ranks.as_mut_ptr());
            chunk_ranges.par_iter().for_each(|&(lo, hi)| {
                for v in lo..hi {
                    let mut sum = 0.0;
                    for &u in view.neighbor_slice(v as u64) {
                        sum += contrib[u as usize];
                    }
                    unsafe { *dst.get().add(v) = base + DAMPING * sum };
                }
            });
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{path4, two_triangles};
    use dgap::ReferenceGraph;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn ranks_sum_to_roughly_one_on_connected_graphs() {
        let g = two_triangles();
        let r = pagerank(&g, 20);
        let sum: f64 = r.iter().sum();
        // Vertex 6 is isolated and leaks rank, so the sum is slightly below 1.
        assert!(sum > 0.8 && sum <= 1.0 + 1e-9, "sum = {sum}");
    }

    #[test]
    fn hubs_rank_higher_than_leaves() {
        let g = two_triangles();
        let r = pagerank(&g, 20);
        assert!(r[2] > r[0]);
        assert!(r[3] > r[5]);
        assert!(r[6] < r[0], "isolated vertex has the lowest rank");
    }

    #[test]
    fn symmetric_path_is_symmetric() {
        let g = path4();
        let r = pagerank(&g, 30);
        assert!((r[0] - r[3]).abs() < 1e-9);
        assert!((r[1] - r[2]).abs() < 1e-9);
        assert!(r[1] > r[0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = two_triangles();
        assert_close(&pagerank(&g, 20), &pagerank_parallel(&g, 20));
        let g = path4();
        assert_close(&pagerank(&g, 7), &pagerank_parallel(&g, 7));
    }

    #[test]
    fn csr_kernel_is_bit_identical_to_sequential() {
        use dgap::FrozenView;
        for g in [two_triangles(), path4()] {
            let frozen = FrozenView::capture(&g);
            let dyn_ranks = pagerank(&frozen, 20);
            let csr_ranks = pagerank_csr(&frozen, 20);
            assert_eq!(dyn_ranks, csr_ranks, "same fp ops in the same order");
        }
        assert!(pagerank_csr(&FrozenView::capture(&ReferenceGraph::new(0)), 5).is_empty());
    }

    #[test]
    fn empty_and_zero_iteration_cases() {
        let empty = ReferenceGraph::new(0);
        assert!(pagerank(&empty, 5).is_empty());
        let g = path4();
        let r = pagerank(&g, 0);
        assert!(r.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn uniform_ring_yields_uniform_ranks() {
        let mut g = ReferenceGraph::new(5);
        for v in 0..5u64 {
            g.add_edge(v, (v + 1) % 5);
            g.add_edge((v + 1) % 5, v);
        }
        let r = pagerank(&g, 25);
        for &x in &r {
            assert!((x - 0.2).abs() < 1e-9);
        }
    }
}
