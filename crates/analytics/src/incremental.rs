//! Incremental (epoch-delta) kernels: PageRank and connected components
//! that seed from the **previous epoch's result** and re-relax only the
//! neighbourhood of the vertices whose adjacency actually changed.
//!
//! The serving steady state is small write bursts between analytics
//! queries; recomputing from a cold start each epoch pays O(V + E) per
//! query for a delta that touched a handful of vertices.  The `sharded`
//! crate's `UnifiedView::refreshed` already derives the exact changed
//! vertex set as a by-product of its span re-merge; these kernels turn
//! that delta into O(delta)-shaped work:
//!
//! * [`pagerank_incremental`] replays the fixed-iteration pull schedule,
//!   but per iteration recomputes only a *frontier*: the adjacency-changed
//!   vertices plus the neighbours of every vertex whose rank deviated in
//!   the previous iteration.  Because the service's parity contract (and
//!   the GAPBS configuration the paper benchmarks) is a fixed 20-iteration
//!   run — not a converged fixed point — the kernel keeps the previous
//!   epoch's **per-iteration rank history** ([`RankCache`]) and reuses the
//!   old trajectory verbatim for every vertex outside the frontier: a
//!   vertex's rank at iteration `k` depends only on its neighbours' ranks
//!   at `k - 1`, so an untouched neighbourhood reproduces the old value
//!   bit-for-bit.  Deviations below [`INCREMENTAL_PRUNE_TOLERANCE`] are
//!   not propagated (damping contracts them geometrically, keeping the
//!   end-to-end error orders of magnitude under the pinned `1e-9`), which
//!   is what lets the frontier die out instead of flooding the graph.
//! * [`cc_incremental`] exploits that insert-only deltas can only *merge*
//!   components: it unions the previous epoch's labels across the changed
//!   vertices' adjacency and relabels — exactly the labels [`crate::cc_csr`]
//!   would produce (component minima), at O(delta + V) instead of
//!   O(rounds × (V + E)).  Any lost edge could split a component, so
//!   deletions fall back to the full kernel.
//!
//! Both kernels return `None` when incremental execution is not safe or
//! not profitable (vertex range shrank, delta above
//! [`INCREMENTAL_FALLBACK_FRACTION`] of V, deletions for CC); the caller
//! runs the full kernel instead and counts a fallback.

use dgap::chunks::{ranges, SendPtr};
use dgap::{CsrView, VertexId};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

use crate::pagerank::DAMPING;

/// Give up on incremental PageRank when the changed set (or any
/// iteration's frontier) exceeds this fraction of the vertex set — past
/// that point the bookkeeping costs more than the full kernel's tight
/// chunked passes.
pub const INCREMENTAL_FALLBACK_FRACTION: f64 = 0.25;

/// Rank deviations at or below this magnitude are not propagated to the
/// next iteration's frontier.  Suppressed error contracts geometrically
/// under damping (each hop redistributes it divided by the neighbour's
/// degree), so the end-to-end deviation from the full kernel stays about
/// two orders of magnitude under the pinned `1e-9` parity bound — while a
/// burst's rank perturbation, which spreads out and shrinks roughly with
/// the ball size it has reached, falls below this threshold within a few
/// hops and lets the frontier die out instead of flooding the graph.
pub const INCREMENTAL_PRUNE_TOLERANCE: f64 = 1e-11;

/// The previous epoch's PageRank trajectory: the rank vector after **every**
/// iteration, not just the last, so an incremental replay can reuse any
/// untouched vertex's value at any point of the schedule bit-for-bit.
///
/// The trajectory is stored as dense `base` rows (produced by a full
/// [`pagerank_csr_recording`] run and **shared, never mutated**, across
/// every epoch descended from it) plus a sparse `patch` overlay per row
/// holding only the entries an incremental replay changed.  That makes an
/// incremental epoch O(frontier) in allocation and copying instead of
/// O(iterations × V) — cloning and re-materialising the dense history cost
/// as much as the full kernel it was supposed to beat.  The row at
/// iteration `k` is `base[k]` overridden by `patch[k]`; row 0 is the
/// uniform seed and never deviates.
#[derive(Debug, Clone)]
pub struct RankCache {
    iterations: usize,
    base: Vec<Arc<Vec<f64>>>,
    patch: Vec<HashMap<VertexId, f64>>,
    /// Materialised final row (`base[iterations]` + `patch[iterations]`) —
    /// identical to what `pagerank_csr` would have returned.
    ranks: Vec<f64>,
}

impl RankCache {
    /// The iteration count this trajectory was computed with.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of vertices the trajectory covers.
    pub fn num_vertices(&self) -> usize {
        self.base.first().map_or(0, |row| row.len())
    }

    /// The final rank vector — identical to what `pagerank_csr` returned.
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// Total trajectory entries held — `(iterations + 1) × V` dense plus
    /// the sparse patches — what a cache eviction policy budgets against.
    pub fn entries(&self) -> usize {
        self.base.iter().map(|row| row.len()).sum::<usize>()
            + self.patch.iter().map(HashMap::len).sum::<usize>()
    }

    /// Sparse overrides accumulated by incremental replays.
    fn patched(&self) -> usize {
        self.patch.iter().map(HashMap::len).sum()
    }

    /// Fold every patch row into a fresh dense base (rows without patches
    /// keep sharing the old allocation).  Costs O(patched rows × V), paid
    /// only once per ~V accumulated patches — the amortisation that keeps
    /// long incremental chains from degrading into dense-row clones on
    /// every epoch.
    fn densified(&self) -> RankCache {
        let base = self
            .base
            .iter()
            .zip(&self.patch)
            .map(|(row, patch)| {
                if patch.is_empty() {
                    Arc::clone(row)
                } else {
                    let mut dense = (**row).clone();
                    for (&v, &x) in patch {
                        dense[v as usize] = x;
                    }
                    Arc::new(dense)
                }
            })
            .collect();
        RankCache {
            iterations: self.iterations,
            base,
            patch: vec![HashMap::new(); self.patch.len()],
            ranks: self.ranks.clone(),
        }
    }
}

/// A successful incremental PageRank pass: the refreshed trajectory plus
/// the frontier statistics the service's telemetry records.
#[derive(Debug)]
pub struct IncrementalRun {
    /// The new epoch's trajectory (becomes the next epoch's seed).
    pub cache: RankCache,
    /// Largest per-iteration frontier (recomputed-vertex count).
    pub frontier_peak: usize,
    /// Total vertex recomputations across all iterations — the work an
    /// equivalent full run would have spent `iterations × V` on.
    pub recomputed: usize,
}

/// Full zero-dispatch PageRank that also records the per-iteration rank
/// history.  The loop body is the same two chunked passes as
/// [`crate::pagerank_csr`] in the same order, so the trajectory (and the
/// final vector) is bit-identical to it.
pub fn pagerank_csr_recording(view: &impl CsrView, iterations: usize) -> RankCache {
    let n = view.num_vertices();
    if n == 0 {
        return RankCache {
            iterations,
            base: Vec::new(),
            patch: Vec::new(),
            ranks: Vec::new(),
        };
    }
    let base = (1.0 - DAMPING) / n as f64;
    let mut ranks = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    let chunk_ranges = ranges(n);
    let mut history = Vec::with_capacity(iterations + 1);
    history.push(ranks.clone());
    for _ in 0..iterations {
        {
            let ranks = &ranks;
            let dst = SendPtr(contrib.as_mut_ptr());
            chunk_ranges.par_iter().for_each(|&(lo, hi)| {
                for (off, &rank) in ranks[lo..hi].iter().enumerate() {
                    let v = lo + off;
                    let d = view.neighbor_slice(v as u64).len();
                    let c = if d == 0 { 0.0 } else { rank / d as f64 };
                    // Chunks are disjoint: each index is written once.
                    unsafe { *dst.get().add(v) = c };
                }
            });
        }
        {
            let contrib = &contrib;
            let dst = SendPtr(ranks.as_mut_ptr());
            chunk_ranges.par_iter().for_each(|&(lo, hi)| {
                for v in lo..hi {
                    let mut sum = 0.0;
                    for &u in view.neighbor_slice(v as u64) {
                        sum += contrib[u as usize];
                    }
                    unsafe { *dst.get().add(v) = base + DAMPING * sum };
                }
            });
        }
        history.push(ranks.clone());
    }
    RankCache {
        iterations,
        base: history.into_iter().map(Arc::new).collect(),
        patch: vec![HashMap::new(); iterations + 1],
        ranks,
    }
}

/// Incremental PageRank: replay `prev`'s fixed-iteration schedule over the
/// new adjacency, recomputing only the frontier grown outward from
/// `changed` (the vertices whose adjacency differs from the epoch `prev`
/// was computed over).  Returns `None` — caller falls back to the full
/// kernel — when the vertex range changed or the changed set exceeds
/// [`INCREMENTAL_FALLBACK_FRACTION`] of V.  The per-iteration frontier is
/// allowed to transiently flood (a perturbation spreads before pruning
/// contracts it); only the input delta gates the fallback.
///
/// The result matches `pagerank_csr(view, prev.iterations())` to well
/// within `1e-9` per vertex: untouched vertices reuse the old trajectory
/// bit-for-bit, recomputed vertices re-derive their value from the same
/// neighbour order, and only deviations at or below
/// [`INCREMENTAL_PRUNE_TOLERANCE`] are ever left unpropagated.
pub fn pagerank_incremental(
    view: &impl CsrView,
    prev: &RankCache,
    changed: &[VertexId],
) -> Option<IncrementalRun> {
    let n = view.num_vertices();
    if prev.num_vertices() != n {
        return None;
    }
    if n == 0 || changed.is_empty() {
        return Some(IncrementalRun {
            cache: prev.clone(),
            frontier_peak: 0,
            recomputed: 0,
        });
    }
    let limit = ((INCREMENTAL_FALLBACK_FRACTION * n as f64).ceil() as usize).max(1);
    if changed.len() > limit {
        return None;
    }
    // A long chain of incremental epochs accretes patches; once the
    // overlay rivals a dense row, fold it into fresh base rows so lookups
    // and clones stay sparse (amortised: once per ~V accumulated patches).
    let dense;
    let prev = if prev.patched() > n {
        dense = prev.densified();
        &dense
    } else {
        prev
    };
    let base = (1.0 - DAMPING) / n as f64;
    let mut patch = prev.patch.clone();

    // `stamp[v] == epoch` marks frontier membership for the current
    // iteration without clearing a bitmap each round.
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;
    // Vertices whose rank deviated from the old trajectory last iteration;
    // empty before iteration 1 (both runs start from the same uniform seed).
    let mut deviated: Vec<usize> = Vec::new();
    let mut next_deviated: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();
    let mut frontier_peak = 0usize;
    let mut recomputed = 0usize;

    for k in 1..=prev.iterations {
        // Frontier: adjacency-changed vertices and their neighbourhoods
        // (a changed degree alters the vertex's *contribution* at every
        // iteration even when its rank coincides with the old trajectory,
        // so its consumers must re-pull each round), plus everyone a
        // deviated rank can reach this round.  Symmetric adjacency — the
        // convention every kernel in this crate relies on — is what makes
        // `neighbor_slice` enumerate a vertex's consumers.
        epoch += 1;
        frontier.clear();
        for &v in changed {
            let v = v as usize;
            if v < n && stamp[v] != epoch {
                stamp[v] = epoch;
                frontier.push(v);
            }
        }
        for &v in changed {
            if (v as usize) >= n {
                continue;
            }
            for &w in view.neighbor_slice(v) {
                let w = w as usize;
                if stamp[w] != epoch {
                    stamp[w] = epoch;
                    frontier.push(w);
                }
            }
        }
        for &u in &deviated {
            for &w in view.neighbor_slice(u as u64) {
                let w = w as usize;
                if stamp[w] != epoch {
                    stamp[w] = epoch;
                    frontier.push(w);
                }
            }
        }
        frontier_peak = frontier_peak.max(frontier.len());
        recomputed += frontier.len();

        let (before, after) = patch.split_at_mut(k);
        let prev_patch: &HashMap<VertexId, f64> = &before[k - 1];
        let cur_patch: &mut HashMap<VertexId, f64> = &mut after[0];
        let prev_base: &[f64] = &prev.base[k - 1];
        let cur_base: &[f64] = &prev.base[k];
        next_deviated.clear();
        for &v in &frontier {
            let mut sum = 0.0;
            for &u in view.neighbor_slice(v as u64) {
                let d = view.neighbor_slice(u).len();
                // Same IEEE ops as the full kernel's contribution pass
                // (rank / degree), re-derived per edge instead of staged
                // through the O(V) contrib array.
                if d != 0 {
                    let r = if prev_patch.is_empty() {
                        prev_base[u as usize]
                    } else {
                        match prev_patch.get(&u) {
                            Some(&x) => x,
                            None => prev_base[u as usize],
                        }
                    };
                    sum += r / d as f64;
                }
            }
            let val = base + DAMPING * sum;
            let old = match cur_patch.get(&(v as VertexId)) {
                Some(&x) => x,
                None => cur_base[v],
            };
            // Patch only genuine deviations from the shared dense row; a
            // value that re-derives the base bit-for-bit clears any stale
            // override inherited from an earlier epoch.
            if val == cur_base[v] {
                cur_patch.remove(&(v as VertexId));
            } else {
                cur_patch.insert(v as VertexId, val);
            }
            if (val - old).abs() > INCREMENTAL_PRUNE_TOLERANCE {
                next_deviated.push(v);
            }
        }
        std::mem::swap(&mut deviated, &mut next_deviated);
    }

    let mut ranks = (*prev.base[prev.iterations]).clone();
    for (&v, &x) in &patch[prev.iterations] {
        ranks[v as usize] = x;
    }
    Some(IncrementalRun {
        cache: RankCache {
            iterations: prev.iterations,
            base: prev.base.clone(),
            patch,
            ranks,
        },
        frontier_peak,
        recomputed,
    })
}

/// Incremental connected components: merge the previous epoch's labels
/// across the changed vertices' adjacency.  Insert-only deltas can only
/// merge components, so a union-find over the old labels — seeded by every
/// edge incident to a changed vertex — followed by one relabel pass yields
/// **exactly** the labels [`crate::cc_csr`] produces (the smallest vertex
/// id in each component).  Returns `None` when any edge was lost (a
/// deletion can split a component; only the full kernel can see that) or
/// the vertex range shrank.
pub fn cc_incremental(
    view: &impl CsrView,
    prev_labels: &[u64],
    changed: &[VertexId],
    has_deletions: bool,
) -> Option<Vec<u64>> {
    if has_deletions {
        return None;
    }
    let n = view.num_vertices();
    if prev_labels.len() > n {
        return None;
    }
    // New vertices (range grew) start as their own component; their edges
    // are covered below because a formerly-empty adjacency that gained
    // edges is by definition changed.
    let mut labels: Vec<u64> = Vec::with_capacity(n);
    labels.extend_from_slice(prev_labels);
    labels.extend(prev_labels.len() as u64..n as u64);
    if changed.is_empty() {
        return Some(labels);
    }

    fn find(parent: &mut [u64], mut x: u64) -> u64 {
        while parent[x as usize] != x {
            let g = parent[parent[x as usize] as usize];
            parent[x as usize] = g;
            x = g;
        }
        x
    }

    // Union-find over label ids (labels are vertex ids, so the table spans
    // the vertex range).  Attaching the larger root under the smaller
    // keeps every root the minimum of its merged set — the cc_csr invariant.
    let mut parent: Vec<u64> = (0..n as u64).collect();
    for &v in changed {
        if v as usize >= n {
            continue;
        }
        let lv = labels[v as usize];
        for &u in view.neighbor_slice(v) {
            let (ra, rb) = (find(&mut parent, lv), find(&mut parent, labels[u as usize]));
            if ra < rb {
                parent[rb as usize] = ra;
            } else if rb < ra {
                parent[ra as usize] = rb;
            }
        }
    }
    // Fully compress once, then relabel in parallel chunks off the
    // read-only table.
    for i in 0..n as u64 {
        find(&mut parent, i);
    }
    let parent = &parent;
    let dst = SendPtr(labels.as_mut_ptr());
    ranges(n).par_iter().for_each(|&(lo, hi)| {
        for v in lo..hi {
            // Chunks are disjoint: each index is written once.  Reading
            // labels[v] through the raw pointer is fine — the relabel only
            // depends on the pre-pass value at the same index.
            unsafe {
                let l = *dst.get().add(v);
                *dst.get().add(v) = parent[l as usize];
            }
        }
    });
    Some(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{path4, two_triangles};
    use crate::{cc_csr, pagerank_csr};
    use dgap::{FrozenView, GraphView, ReferenceGraph};

    /// A pseudo-random symmetric graph plus a list of extra edges to apply
    /// as a later burst.
    fn random_graph(n: u64, edges: usize, seed: u64) -> ReferenceGraph {
        let mut g = ReferenceGraph::new(n as usize);
        let mut x = seed;
        for _ in 0..edges {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % n;
            let b = (x >> 11) % n;
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        g
    }

    fn assert_within(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "v {i}: {x} vs {y}");
        }
    }

    #[test]
    fn recording_run_is_bit_identical_to_pagerank_csr() {
        for g in [two_triangles(), path4()] {
            let frozen = FrozenView::capture(&g);
            let cache = pagerank_csr_recording(&frozen, 20);
            assert_eq!(cache.ranks(), &pagerank_csr(&frozen, 20)[..]);
            assert_eq!(cache.iterations(), 20);
            assert_eq!(cache.num_vertices(), g.num_vertices());
            assert_eq!(cache.entries(), 21 * g.num_vertices());
            // history[0] is the uniform seed.
            let n = g.num_vertices() as f64;
            assert!(cache.base[0].iter().all(|&r| r == 1.0 / n));
        }
        let empty = pagerank_csr_recording(&FrozenView::capture(&ReferenceGraph::new(0)), 5);
        assert!(empty.ranks().is_empty());
        assert_eq!(empty.entries(), 0);
    }

    #[test]
    fn incremental_pagerank_tracks_the_full_kernel_across_bursts() {
        let mut g = random_graph(300, 900, 7);
        let frozen = FrozenView::capture(&g);
        let mut cache = pagerank_csr_recording(&frozen, 20);

        let mut x = 99u64;
        for burst in 0..6 {
            // A small burst: a few symmetric inserts (and from burst 3 on,
            // deletions too — PageRank absorbs both).
            let mut changed: Vec<u64> = Vec::new();
            for _ in 0..3 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (x >> 33) % 300;
                let b = (x >> 11) % 300;
                if burst >= 3 && g.remove_edge(a, b) {
                    g.remove_edge(b, a);
                } else {
                    g.add_edge(a, b);
                    g.add_edge(b, a);
                }
                changed.extend([a, b]);
            }
            changed.sort_unstable();
            changed.dedup();
            let frozen = FrozenView::capture(&g);
            let run = pagerank_incremental(&frozen, &cache, &changed)
                .expect("small burst stays incremental");
            let full = pagerank_csr(&frozen, 20);
            assert_within(run.cache.ranks(), &full, 1e-9);
            assert!(run.frontier_peak >= 1, "burst {burst} had a frontier");
            assert!(run.recomputed >= changed.len() * 20);
            cache = run.cache;
        }
    }

    #[test]
    fn empty_delta_returns_the_previous_trajectory_unchanged() {
        let g = two_triangles();
        let frozen = FrozenView::capture(&g);
        let cache = pagerank_csr_recording(&frozen, 20);
        let run = pagerank_incremental(&frozen, &cache, &[]).expect("no-op");
        assert_eq!(run.cache.ranks(), cache.ranks());
        assert_eq!(run.frontier_peak, 0);
        assert_eq!(run.recomputed, 0);
    }

    #[test]
    fn oversized_deltas_and_range_changes_fall_back() {
        let g = random_graph(100, 300, 3);
        let frozen = FrozenView::capture(&g);
        let cache = pagerank_csr_recording(&frozen, 10);
        // More than INCREMENTAL_FALLBACK_FRACTION of V changed.
        let big: Vec<u64> = (0..40).collect();
        assert!(pagerank_incremental(&frozen, &cache, &big).is_none());
        // Vertex range mismatch.
        let grown = FrozenView::capture(&random_graph(150, 300, 3));
        assert!(pagerank_incremental(&grown, &cache, &[1]).is_none());
    }

    #[test]
    fn incremental_cc_merges_components_exactly() {
        // Two separate cliques; the burst bridges them.
        let mut g = ReferenceGraph::new(10);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7)] {
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        let labels = cc_csr(&FrozenView::capture(&g));
        g.add_edge(2, 5);
        g.add_edge(5, 2);
        let frozen = FrozenView::capture(&g);
        let merged = cc_incremental(&frozen, &labels, &[2, 5], false).expect("insert-only burst");
        assert_eq!(merged, cc_csr(&frozen), "exact label parity");
        assert_eq!(merged[5], 0, "merged component takes the minimum label");
    }

    #[test]
    fn incremental_cc_across_random_bursts() {
        let mut g = random_graph(200, 220, 11);
        let mut labels = cc_csr(&FrozenView::capture(&g));
        let mut x = 5u64;
        for _ in 0..8 {
            let mut changed: Vec<u64> = Vec::new();
            for _ in 0..2 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (x >> 33) % 200;
                let b = (x >> 11) % 200;
                g.add_edge(a, b);
                g.add_edge(b, a);
                changed.extend([a, b]);
            }
            changed.sort_unstable();
            changed.dedup();
            let frozen = FrozenView::capture(&g);
            labels = cc_incremental(&frozen, &labels, &changed, false).expect("inserts");
            assert_eq!(labels, cc_csr(&frozen));
        }
    }

    #[test]
    fn incremental_cc_declines_deletions_and_shrunken_ranges() {
        let g = path4();
        let frozen = FrozenView::capture(&g);
        let labels = cc_csr(&frozen);
        assert!(cc_incremental(&frozen, &labels, &[1], true).is_none());
        let smaller = FrozenView::capture(&ReferenceGraph::new(2));
        assert!(cc_incremental(&smaller, &labels, &[], false).is_none());
    }

    #[test]
    fn incremental_cc_covers_a_grown_vertex_range() {
        let mut g = ReferenceGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let labels = cc_csr(&FrozenView::capture(&g));
        // Grow the range and attach the new vertex to the old component.
        g.add_edge(7, 1);
        g.add_edge(1, 7);
        let frozen = FrozenView::capture(&g);
        let merged = cc_incremental(&frozen, &labels, &[1, 7], false).expect("inserts");
        assert_eq!(merged, cc_csr(&frozen));
        assert_eq!(merged[7], 0);
    }
}
