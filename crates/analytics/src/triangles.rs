//! Triangle counting over a CSR view (GAPBS `tc` in spirit): the number of
//! unordered vertex triples `{v, u, w}` that are pairwise adjacent.
//!
//! Node-iterator algorithm with a stamp array instead of sorted-slice
//! intersection: neighbour spans preserve insertion order (they are *not*
//! sorted), so each vertex marks its neighbourhood once and every
//! qualifying wedge closes against the marks in O(1).  The `v < u < w`
//! ordering counts each triangle exactly once and needs the symmetric
//! adjacency the workloads insert (edge in both directions) — the same
//! convention the other kernels rely on.  Duplicate edges are deduplicated
//! by the stamps, so the count is set-semantics even on multigraphs.

use dgap::chunks::ranges;
use dgap::CsrView;
use rayon::prelude::*;

/// Count unordered triangles.  Zero-dispatch: vertex chunks on the
/// work-stealing pool, each walking borrowed neighbour slices with a
/// thread-local stamp array (no hashing, no sorting, no allocation per
/// vertex).
pub fn triangle_count_csr(view: &impl CsrView) -> u64 {
    let n = view.num_vertices();
    if n < 3 {
        return 0;
    }
    ranges(n)
        .par_iter()
        .map(|&(lo, hi)| {
            // mark[w] == v + 1      -> w is a neighbour of the current v
            // used[u] == v + 1      -> wedge pivot u already processed for v
            // closed[w] == wedge id -> triangle (v, u, w) already counted
            let mut mark = vec![0u64; n];
            let mut used = vec![0u64; n];
            let mut closed = vec![0u64; n];
            let mut wedge = 0u64;
            let mut count = 0u64;
            for v in lo as u64..hi as u64 {
                let tag = v + 1;
                for &w in view.neighbor_slice(v) {
                    mark[w as usize] = tag;
                }
                for &u in view.neighbor_slice(v) {
                    if u <= v || used[u as usize] == tag {
                        continue;
                    }
                    used[u as usize] = tag;
                    wedge += 1;
                    for &w in view.neighbor_slice(u) {
                        if w > u && mark[w as usize] == tag && closed[w as usize] != wedge {
                            closed[w as usize] = wedge;
                            count += 1;
                        }
                    }
                }
            }
            count
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{path4, two_triangles};
    use dgap::{FrozenView, GraphView, ReferenceGraph};

    /// Brute-force oracle: every `v < u < w` triple, adjacency by scan.
    fn oracle(g: &ReferenceGraph) -> u64 {
        let n = dgap::GraphView::num_vertices(g) as u64;
        let has = |a: u64, b: u64| g.neighbors(a).contains(&b);
        let mut count = 0;
        for v in 0..n {
            for u in v + 1..n {
                if !has(v, u) {
                    continue;
                }
                for w in u + 1..n {
                    if has(u, w) && has(v, w) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn counts_the_two_triangles() {
        let g = two_triangles();
        assert_eq!(triangle_count_csr(&FrozenView::capture(&g)), 2);
        assert_eq!(oracle(&g), 2);
    }

    #[test]
    fn paths_and_empty_graphs_have_none() {
        assert_eq!(triangle_count_csr(&FrozenView::capture(&path4())), 0);
        let empty = ReferenceGraph::new(0);
        assert_eq!(triangle_count_csr(&FrozenView::capture(&empty)), 0);
    }

    #[test]
    fn matches_the_oracle_on_a_random_graph() {
        let mut g = ReferenceGraph::new(60);
        let mut x = 42u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % 60;
            let b = (x >> 11) % 60;
            if a != b {
                g.add_edge(a, b);
                g.add_edge(b, a);
            }
        }
        assert_eq!(triangle_count_csr(&FrozenView::capture(&g)), oracle(&g));
    }

    #[test]
    fn duplicate_edges_and_self_loops_do_not_inflate_the_count() {
        let mut g = ReferenceGraph::new(3);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2)] {
            g.add_edge(a, b);
            g.add_edge(b, a);
            // Duplicate one direction of every edge, plus a self loop.
            g.add_edge(a, b);
        }
        g.add_edge(1, 1);
        assert_eq!(triangle_count_csr(&FrozenView::capture(&g)), 1);
    }
}
