//! Connected components in the Shiloach–Vishkin style (GAPBS `cc`).
//!
//! Every vertex starts in its own component; repeated *hooking* (adopt the
//! smaller label seen over an edge) and *pointer jumping* (path-halving
//! towards the label root) passes converge to one label per connected
//! component.  The parallel variant races on the label array with relaxed
//! atomics exactly like the GAPBS implementation — monotone decrease makes
//! the race benign.

use dgap::chunks::ranges;
use dgap::{CsrView, GraphView};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sequential Shiloach–Vishkin connected components.  Returns one component
/// label per vertex (the smallest vertex id in the component).
pub fn cc(view: &impl GraphView) -> Vec<u64> {
    let n = view.num_vertices();
    let mut comp: Vec<u64> = (0..n as u64).collect();
    if n == 0 {
        return comp;
    }
    loop {
        let mut changed = false;
        // Hooking: adopt the smaller component label across every edge.
        for v in 0..n as u64 {
            view.for_each_neighbor(v, &mut |u| {
                let (cv, cu) = (comp[v as usize], comp[u as usize]);
                if cv < cu {
                    comp[cu as usize] = comp[cu as usize].min(cv);
                    comp[u as usize] = cv;
                    changed = true;
                } else if cu < cv {
                    comp[cv as usize] = comp[cv as usize].min(cu);
                    comp[v as usize] = cu;
                    changed = true;
                }
            });
        }
        // Pointer jumping: flatten label chains.
        for v in 0..n {
            while comp[v] != comp[comp[v] as usize] {
                comp[v] = comp[comp[v] as usize];
            }
        }
        if !changed {
            break;
        }
    }
    comp
}

/// Rayon-parallel Shiloach–Vishkin connected components.  Produces the same
/// labelling as [`cc`].
pub fn cc_parallel(view: &impl GraphView) -> Vec<u64> {
    let n = view.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let comp: Vec<AtomicU64> = (0..n as u64).map(AtomicU64::new).collect();
    loop {
        let changed: bool = (0..n as u64)
            .into_par_iter()
            .map(|v| {
                let mut local_change = false;
                view.for_each_neighbor(v, &mut |u| {
                    // Monotonically lower the larger label towards the
                    // smaller one; races only ever lower labels further.
                    loop {
                        let cv = comp[v as usize].load(Ordering::Relaxed);
                        let cu = comp[u as usize].load(Ordering::Relaxed);
                        if cv == cu {
                            break;
                        }
                        let (hi_idx, lo) = if cv > cu { (v, cu) } else { (u, cv) };
                        let hi = comp[hi_idx as usize].load(Ordering::Relaxed);
                        if hi <= lo {
                            break;
                        }
                        if comp[hi_idx as usize]
                            .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            local_change = true;
                            break;
                        }
                    }
                });
                local_change
            })
            .reduce(|| false, |a, b| a || b);

        (0..n).into_par_iter().for_each(|v| {
            // Path halving.
            loop {
                let c = comp[v].load(Ordering::Relaxed);
                let cc = comp[c as usize].load(Ordering::Relaxed);
                if c == cc {
                    break;
                }
                comp[v].store(cc, Ordering::Relaxed);
            }
        });
        if !changed {
            break;
        }
    }
    comp.into_iter().map(AtomicU64::into_inner).collect()
}

/// Zero-dispatch Shiloach–Vishkin connected components over a CSR view:
/// the hooking pass iterates borrowed neighbour slices in vertex chunks on
/// the work-stealing pool (same benign monotone-decrease races as
/// [`cc_parallel`]); the path-halving pass chunks the label array.
/// Produces the same labelling as [`cc`] and [`cc_parallel`] — every label
/// converges to the smallest vertex id in its component.
pub fn cc_csr(view: &impl CsrView) -> Vec<u64> {
    let n = view.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let comp: Vec<AtomicU64> = (0..n as u64).map(AtomicU64::new).collect();
    let chunk_ranges = ranges(n);
    loop {
        let changed: bool = chunk_ranges
            .par_iter()
            .map(|&(lo, hi)| {
                let mut local_change = false;
                for v in lo as u64..hi as u64 {
                    for &u in view.neighbor_slice(v) {
                        loop {
                            let cv = comp[v as usize].load(Ordering::Relaxed);
                            let cu = comp[u as usize].load(Ordering::Relaxed);
                            if cv == cu {
                                break;
                            }
                            let (hi_idx, lo_lbl) = if cv > cu { (v, cu) } else { (u, cv) };
                            let hi_lbl = comp[hi_idx as usize].load(Ordering::Relaxed);
                            if hi_lbl <= lo_lbl {
                                break;
                            }
                            if comp[hi_idx as usize]
                                .compare_exchange(
                                    hi_lbl,
                                    lo_lbl,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                local_change = true;
                                break;
                            }
                        }
                    }
                }
                local_change
            })
            .reduce(|| false, |a, b| a || b);

        chunk_ranges.par_iter().for_each(|&(lo, hi)| {
            for v in lo..hi {
                loop {
                    let c = comp[v].load(Ordering::Relaxed);
                    let cc = comp[c as usize].load(Ordering::Relaxed);
                    if c == cc {
                        break;
                    }
                    comp[v].store(cc, Ordering::Relaxed);
                }
            }
        });
        if !changed {
            break;
        }
    }
    comp.into_iter().map(AtomicU64::into_inner).collect()
}

/// Number of distinct components in a labelling (testing/reporting helper).
pub fn component_count(labels: &[u64]) -> usize {
    let mut seen: Vec<u64> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{path4, two_triangles};
    use dgap::ReferenceGraph;

    #[test]
    fn single_component_path() {
        let g = path4();
        let labels = cc(&g);
        assert!(labels.iter().all(|&l| l == labels[0]));
        assert_eq!(component_count(&labels), 1);
    }

    #[test]
    fn isolated_vertex_is_its_own_component() {
        let g = two_triangles();
        let labels = cc(&g);
        assert_eq!(component_count(&labels), 2);
        assert_eq!(labels[6], 6);
        assert!(labels[..6].iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn multiple_components() {
        let mut g = ReferenceGraph::new(9);
        for &(a, b) in &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)] {
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        let labels = cc(&g);
        assert_eq!(component_count(&labels), 4); // {0,1,2} {3,4} {5,6,7} {8}
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
        assert_eq!(labels[8], 8);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = two_triangles();
        assert_eq!(cc(&g), cc_parallel(&g));
        let mut big = ReferenceGraph::new(200);
        let mut x = 123u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % 200;
            let b = (x >> 11) % 200;
            big.add_edge(a, b);
            big.add_edge(b, a);
        }
        assert_eq!(cc(&big), cc_parallel(&big));
    }

    #[test]
    fn empty_graph() {
        let g = ReferenceGraph::new(0);
        assert!(cc(&g).is_empty());
        assert!(cc_parallel(&g).is_empty());
        assert!(cc_csr(&dgap::FrozenView::capture(&g)).is_empty());
    }

    #[test]
    fn csr_kernel_matches_sequential_labels() {
        use dgap::FrozenView;
        let g = two_triangles();
        let frozen = FrozenView::capture(&g);
        assert_eq!(cc(&frozen), cc_csr(&frozen));
        let mut big = ReferenceGraph::new(200);
        let mut x = 123u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % 200;
            let b = (x >> 11) % 200;
            big.add_edge(a, b);
            big.add_edge(b, a);
        }
        let frozen = FrozenView::capture(&big);
        assert_eq!(cc(&frozen), cc_csr(&frozen));
    }

    #[test]
    fn labels_are_component_minima() {
        let g = two_triangles();
        let labels = cc(&g);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[5], 0);
    }
}
