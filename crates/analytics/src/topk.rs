//! Top-k selection kernels: the k highest-degree vertices and the k
//! highest-ranked vertices of a PageRank vector.
//!
//! Both select in parallel chunks (each chunk surfaces its local top-k,
//! the merge picks the global winners), so the common `k ≪ V` case never
//! materialises or sorts a V-sized candidate list.  Ordering is
//! deterministic: descending score, ties towards the lowest vertex id —
//! the same convention as [`crate::highest_degree_vertex`].

use dgap::chunks::ranges;
use dgap::{CsrView, VertexId};
use rayon::prelude::*;

/// The `k` highest-degree vertices as `(vertex, degree)`, descending by
/// degree, ties towards the lowest id.  Returns fewer than `k` entries
/// only when the graph has fewer vertices.
pub fn top_k_degree(view: &impl CsrView, k: usize) -> Vec<(VertexId, u64)> {
    let n = view.num_vertices();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let per_chunk: Vec<Vec<(VertexId, u64)>> = ranges(n)
        .par_iter()
        .map(|&(lo, hi)| {
            let mut local: Vec<(VertexId, u64)> = (lo as u64..hi as u64)
                .map(|v| (v, view.neighbor_slice(v).len() as u64))
                .collect();
            local.sort_unstable_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
            local.truncate(k);
            local
        })
        .collect();
    let mut all: Vec<(VertexId, u64)> = per_chunk.into_iter().flatten().collect();
    all.sort_unstable_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
    all.truncate(k);
    all
}

/// The `k` highest entries of a rank vector as `(vertex, rank)`,
/// descending by rank, ties towards the lowest id.  Pairs with the
/// maintained PageRank vector (`RankCache::ranks`) so the service answers
/// top-k queries without recomputing ranks.
pub fn top_k_pagerank(ranks: &[f64], k: usize) -> Vec<(VertexId, f64)> {
    if ranks.is_empty() || k == 0 {
        return Vec::new();
    }
    let chunk_ranges = ranges(ranks.len());
    let per_chunk: Vec<Vec<(VertexId, f64)>> = chunk_ranges
        .par_iter()
        .map(|&(lo, hi)| {
            let mut local: Vec<(VertexId, f64)> =
                (lo..hi).map(|v| (v as VertexId, ranks[v])).collect();
            local.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            local.truncate(k);
            local
        })
        .collect();
    let mut all: Vec<(VertexId, f64)> = per_chunk.into_iter().flatten().collect();
    all.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_triangles;
    use dgap::{FrozenView, ReferenceGraph};

    #[test]
    fn degrees_rank_the_hubs_first_with_id_tiebreaks() {
        let g = two_triangles();
        let frozen = FrozenView::capture(&g);
        // Degrees: v2 and v3 have 3; v0,1,4,5 have 2; v6 has 0.
        let top = top_k_degree(&frozen, 3);
        assert_eq!(top, vec![(2, 3), (3, 3), (0, 2)]);
        // k beyond V clips to V, still fully ordered.
        let all = top_k_degree(&frozen, 100);
        assert_eq!(all.len(), 7);
        assert_eq!(all[6], (6, 0));
        assert!(top_k_degree(&frozen, 0).is_empty());
    }

    #[test]
    fn pagerank_topk_orders_by_rank_then_id() {
        let ranks = [0.1, 0.4, 0.4, 0.05, 0.05];
        assert_eq!(
            top_k_pagerank(&ranks, 3),
            vec![(1, 0.4), (2, 0.4), (0, 0.1)]
        );
        assert_eq!(top_k_pagerank(&ranks, 99).len(), 5);
        assert!(top_k_pagerank(&[], 4).is_empty());
        assert!(top_k_pagerank(&ranks, 0).is_empty());
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let frozen = FrozenView::capture(&ReferenceGraph::new(0));
        assert!(top_k_degree(&frozen, 5).is_empty());
    }

    #[test]
    fn chunked_selection_matches_a_full_sort() {
        let mut g = ReferenceGraph::new(500);
        let mut x = 17u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            g.add_edge((x >> 33) % 500, (x >> 11) % 500);
        }
        let frozen = FrozenView::capture(&g);
        let mut oracle: Vec<(u64, u64)> = (0..500u64)
            .map(|v| (v, dgap::GraphView::degree(&g, v) as u64))
            .collect();
        oracle.sort_unstable_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
        oracle.truncate(10);
        assert_eq!(top_k_degree(&frozen, 10), oracle);
    }
}
