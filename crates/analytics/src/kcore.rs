//! k-core decomposition membership: the maximal subgraph in which every
//! vertex has degree ≥ k, found by repeatedly peeling vertices below the
//! threshold.
//!
//! The degree gather is a parallel chunked pass over the CSR offsets; the
//! peel itself is the standard sequential cascade (each vertex is removed
//! at most once, so it is O(V + E) total and usually touches a small
//! fringe of the graph).

use dgap::chunks::{ranges, SendPtr};
use dgap::CsrView;
use rayon::prelude::*;

/// The vertices of the k-core, ascending.  `k == 0` is the whole vertex
/// set (every vertex trivially has degree ≥ 0, isolated ones included);
/// a `k` above the maximum degree yields an empty core.  Degrees count
/// edge multiplicity, matching [`dgap::GraphView::degree`].
pub fn k_core_csr(view: &impl CsrView, k: u64) -> Vec<u64> {
    let n = view.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if k == 0 {
        return (0..n as u64).collect();
    }
    // Parallel degree gather off the offsets array.
    let mut deg: Vec<u64> = Vec::with_capacity(n);
    {
        let dst = SendPtr(deg.as_mut_ptr());
        ranges(n).par_iter().for_each(|&(lo, hi)| {
            for v in lo..hi {
                // Chunks are disjoint: each index is written once.
                unsafe { *dst.get().add(v) = view.neighbor_slice(v as u64).len() as u64 };
            }
        });
        unsafe { deg.set_len(n) };
    }

    let mut alive = vec![true; n];
    let mut queue: Vec<u64> = (0..n as u64).filter(|&v| deg[v as usize] < k).collect();
    for &v in &queue {
        alive[v as usize] = false;
    }
    let mut at = 0;
    while at < queue.len() {
        let v = queue[at];
        at += 1;
        for &u in view.neighbor_slice(v) {
            let u = u as usize;
            if !alive[u] {
                continue;
            }
            deg[u] -= 1;
            if deg[u] < k {
                alive[u] = false;
                queue.push(u as u64);
            }
        }
    }
    (0..n as u64).filter(|&v| alive[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_triangles;
    use dgap::{FrozenView, GraphView, ReferenceGraph};

    /// Brute-force oracle: peel until fixpoint with fresh degree scans.
    fn oracle(g: &ReferenceGraph, k: u64) -> Vec<u64> {
        let n = dgap::GraphView::num_vertices(g) as u64;
        let mut alive: Vec<bool> = vec![true; n as usize];
        loop {
            let mut removed = false;
            for v in 0..n {
                if !alive[v as usize] {
                    continue;
                }
                let d = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| alive[u as usize])
                    .count() as u64;
                if d < k {
                    alive[v as usize] = false;
                    removed = true;
                }
            }
            if !removed {
                return (0..n).filter(|&v| alive[v as usize]).collect();
            }
        }
    }

    #[test]
    fn two_triangles_2_core_drops_the_isolated_vertex() {
        let g = two_triangles();
        let frozen = FrozenView::capture(&g);
        assert_eq!(k_core_csr(&frozen, 2), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(k_core_csr(&frozen, 0), (0..7).collect::<Vec<_>>());
        assert!(k_core_csr(&frozen, 4).is_empty());
    }

    #[test]
    fn peeling_cascades_through_chains() {
        // A triangle with a pendant path: the 2-core is the triangle only,
        // and removing the path tip must cascade down the chain.
        let mut g = ReferenceGraph::new(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)] {
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        assert_eq!(k_core_csr(&FrozenView::capture(&g), 2), vec![0, 1, 2]);
    }

    #[test]
    fn matches_the_oracle_on_a_random_graph() {
        let mut g = ReferenceGraph::new(80);
        let mut x = 9u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % 80;
            let b = (x >> 11) % 80;
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        let frozen = FrozenView::capture(&g);
        for k in 0..8 {
            assert_eq!(k_core_csr(&frozen, k), oracle(&g, k), "k = {k}");
        }
    }

    #[test]
    fn empty_graph_has_no_core() {
        let frozen = FrozenView::capture(&ReferenceGraph::new(0));
        assert!(k_core_csr(&frozen, 0).is_empty());
        assert!(k_core_csr(&frozen, 3).is_empty());
    }
}
