//! Direction-optimizing breadth-first search (GAPBS `bfs`, Beamer et al.).
//!
//! The traversal switches between the classic *top-down* step (scan the
//! frontier's neighbours) and the *bottom-up* step (scan unvisited vertices
//! and test whether any neighbour is in the frontier) using the GAPBS
//! heuristics: switch to bottom-up when the frontier's edge count exceeds
//! the unexplored edge count divided by `ALPHA`, and back to top-down when
//! the frontier shrinks below `|V| / BETA`.

use dgap::chunks::ranges;
use dgap::{CsrView, GraphView, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};

/// GAPBS default α (top-down → bottom-up threshold).
pub const ALPHA: usize = 15;
/// GAPBS default β (bottom-up → top-down threshold).
pub const BETA: usize = 18;

/// Parent of an unreached vertex.
pub const UNREACHED: i64 = -1;

/// Sequential direction-optimizing BFS.  Returns the parent array
/// (`UNREACHED` for vertices not reachable from `source`; the source is its
/// own parent).
pub fn bfs(view: &impl GraphView, source: VertexId) -> Vec<i64> {
    let n = view.num_vertices();
    let mut parent = vec![UNREACHED; n];
    if n == 0 || source as usize >= n {
        return parent;
    }
    parent[source as usize] = source as i64;
    let mut frontier = vec![source];
    let total_edges = view.num_edges().max(1);
    let mut explored_edges = view.degree(source);

    while !frontier.is_empty() {
        // Heuristic: how much work would each direction do?
        let frontier_edges: usize = frontier.iter().map(|&v| view.degree(v)).sum();
        let remaining = total_edges.saturating_sub(explored_edges).max(1);
        let bottom_up = frontier_edges > remaining / ALPHA && frontier.len() > n / BETA;

        let mut next = Vec::new();
        if bottom_up {
            let in_frontier: Vec<bool> = {
                let mut f = vec![false; n];
                for &v in &frontier {
                    f[v as usize] = true;
                }
                f
            };
            for (v, p) in parent.iter_mut().enumerate() {
                if *p != UNREACHED {
                    continue;
                }
                let mut found = None;
                view.for_each_neighbor(v as u64, &mut |u| {
                    if found.is_none() && in_frontier[u as usize] {
                        found = Some(u);
                    }
                });
                if let Some(u) = found {
                    *p = u as i64;
                    next.push(v as u64);
                }
            }
        } else {
            for &v in &frontier {
                view.for_each_neighbor(v, &mut |u| {
                    if parent[u as usize] == UNREACHED {
                        parent[u as usize] = v as i64;
                        next.push(u);
                    }
                });
            }
        }
        explored_edges += next.iter().map(|&v| view.degree(v)).sum::<usize>();
        frontier = next;
    }
    parent
}

/// Rayon-parallel direction-optimizing BFS.  Visits the same set of vertices
/// as [`bfs`] with the same distances; parent choices may differ when a
/// vertex is reachable from several frontier vertices in the same level.
pub fn bfs_parallel(view: &impl GraphView, source: VertexId) -> Vec<i64> {
    let n = view.num_vertices();
    if n == 0 || source as usize >= n {
        return vec![UNREACHED; n];
    }
    let parent: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(UNREACHED)).collect();
    parent[source as usize].store(source as i64, Ordering::Relaxed);
    let mut frontier = vec![source];
    let total_edges = view.num_edges().max(1);
    let mut explored_edges = view.degree(source);

    while !frontier.is_empty() {
        let frontier_edges: usize = frontier.par_iter().map(|&v| view.degree(v)).sum();
        let remaining = total_edges.saturating_sub(explored_edges).max(1);
        let bottom_up = frontier_edges > remaining / ALPHA && frontier.len() > n / BETA;

        let next: Vec<VertexId> = if bottom_up {
            let mut in_frontier = vec![false; n];
            for &v in &frontier {
                in_frontier[v as usize] = true;
            }
            (0..n as u64)
                .into_par_iter()
                .filter_map(|v| {
                    if parent[v as usize].load(Ordering::Relaxed) != UNREACHED {
                        return None;
                    }
                    let mut found = None;
                    view.for_each_neighbor(v, &mut |u| {
                        if found.is_none() && in_frontier[u as usize] {
                            found = Some(u);
                        }
                    });
                    found.map(|u| {
                        parent[v as usize].store(u as i64, Ordering::Relaxed);
                        v
                    })
                })
                .collect()
        } else {
            frontier
                .par_iter()
                .flat_map_iter(|&v| {
                    let mut claimed = Vec::new();
                    view.for_each_neighbor(v, &mut |u| {
                        if parent[u as usize]
                            .compare_exchange(
                                UNREACHED,
                                v as i64,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            claimed.push(u);
                        }
                    });
                    claimed.into_iter()
                })
                .collect()
        };
        explored_edges += next.iter().map(|&v| view.degree(v)).sum::<usize>();
        frontier = next;
    }
    parent.into_iter().map(AtomicI64::into_inner).collect()
}

/// Zero-dispatch direction-optimizing BFS over a CSR view: both the
/// top-down step (scan the frontier's neighbour slices, claim children by
/// CAS) and the bottom-up step (scan unvisited vertices' slices for a
/// frontier member) iterate borrowed slices in chunks on the work-stealing
/// pool.  Same GAPBS α/β switching as [`bfs`] — degree sums are slice
/// lengths, so every level takes the same direction decision — hence the
/// same reached set and the same hop distances; parent choices may differ
/// within a level exactly as for [`bfs_parallel`].
pub fn bfs_csr(view: &impl CsrView, source: VertexId) -> Vec<i64> {
    let n = view.num_vertices();
    if n == 0 || source as usize >= n {
        return vec![UNREACHED; n];
    }
    let parent: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(UNREACHED)).collect();
    parent[source as usize].store(source as i64, Ordering::Relaxed);
    let mut frontier = vec![source];
    let total_edges = view.num_edges().max(1);
    let mut explored_edges = view.neighbor_slice(source).len();

    while !frontier.is_empty() {
        let frontier_edges: usize = ranges(frontier.len())
            .into_par_iter()
            .map(|(lo, hi)| {
                frontier[lo..hi]
                    .iter()
                    .map(|&v| view.neighbor_slice(v).len())
                    .sum::<usize>()
            })
            .sum();
        let remaining = total_edges.saturating_sub(explored_edges).max(1);
        let bottom_up = frontier_edges > remaining / ALPHA && frontier.len() > n / BETA;

        let next: Vec<VertexId> = if bottom_up {
            let mut in_frontier = vec![false; n];
            for &v in &frontier {
                in_frontier[v as usize] = true;
            }
            let in_frontier = &in_frontier;
            let parent = &parent;
            ranges(n)
                .into_par_iter()
                .flat_map_iter(|(lo, hi)| {
                    let mut claimed = Vec::new();
                    for v in lo as u64..hi as u64 {
                        if parent[v as usize].load(Ordering::Relaxed) != UNREACHED {
                            continue;
                        }
                        if let Some(&u) = view
                            .neighbor_slice(v)
                            .iter()
                            .find(|&&u| in_frontier[u as usize])
                        {
                            parent[v as usize].store(u as i64, Ordering::Relaxed);
                            claimed.push(v);
                        }
                    }
                    claimed
                })
                .collect()
        } else {
            let frontier = &frontier;
            let parent = &parent;
            ranges(frontier.len())
                .into_par_iter()
                .flat_map_iter(|(lo, hi)| {
                    let mut claimed = Vec::new();
                    for &v in &frontier[lo..hi] {
                        for &u in view.neighbor_slice(v) {
                            if parent[u as usize]
                                .compare_exchange(
                                    UNREACHED,
                                    v as i64,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                claimed.push(u);
                            }
                        }
                    }
                    claimed
                })
                .collect()
        };
        explored_edges += next
            .iter()
            .map(|&v| view.neighbor_slice(v).len())
            .sum::<usize>();
        frontier = next;
    }
    parent.into_iter().map(AtomicI64::into_inner).collect()
}

/// Compute hop distances from a parent array (testing helper): `-1` for
/// unreached vertices.
pub fn distances_from_parents(view: &impl GraphView, parent: &[i64], source: VertexId) -> Vec<i64> {
    let _ = view;
    let n = parent.len();
    let mut dist = vec![-1i64; n];
    if n == 0 {
        return dist;
    }
    dist[source as usize] = 0;
    // Repeatedly relax: parents form a forest, so n passes suffice.
    for _ in 0..n {
        let mut changed = false;
        for v in 0..n {
            if dist[v] >= 0 || parent[v] == UNREACHED {
                continue;
            }
            let p = parent[v] as usize;
            if dist[p] >= 0 {
                dist[v] = dist[p] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{path4, two_triangles};
    use dgap::ReferenceGraph;

    #[test]
    fn path_graph_distances() {
        let g = path4();
        let p = bfs(&g, 0);
        let d = distances_from_parents(&g, &p, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        assert_eq!(p[0], 0);
        assert_eq!(p[1], 0);
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let g = two_triangles();
        let p = bfs(&g, 0);
        assert_eq!(p[6], UNREACHED);
        assert!(p[..6].iter().all(|&x| x != UNREACHED));
    }

    #[test]
    fn parallel_reaches_the_same_vertices_at_the_same_depth() {
        let g = two_triangles();
        let ps = bfs(&g, 0);
        let pp = bfs_parallel(&g, 0);
        let ds = distances_from_parents(&g, &ps, 0);
        let dp = distances_from_parents(&g, &pp, 0);
        assert_eq!(ds, dp);
    }

    #[test]
    fn bottom_up_switch_on_dense_graph() {
        // A dense graph where most vertices are reached in one hop, forcing
        // the bottom-up heuristic to fire without changing the result.
        let n = 64u64;
        let mut g = ReferenceGraph::new(n as usize);
        for v in 1..n {
            g.add_edge(0, v);
            g.add_edge(v, 0);
            g.add_edge(v, (v % 7) + 1);
            g.add_edge((v % 7) + 1, v);
        }
        let ps = bfs(&g, 0);
        let pp = bfs_parallel(&g, 0);
        let ds = distances_from_parents(&g, &ps, 0);
        let dp = distances_from_parents(&g, &pp, 0);
        assert_eq!(ds, dp);
        assert!(ds[1..].iter().all(|&d| d >= 1));
    }

    #[test]
    fn source_out_of_range_returns_all_unreached() {
        let g = path4();
        let p = bfs(&g, 99);
        assert!(p.iter().all(|&x| x == UNREACHED));
        let p = bfs_parallel(&g, 99);
        assert!(p.iter().all(|&x| x == UNREACHED));
        let frozen = dgap::FrozenView::capture(&g);
        assert!(bfs_csr(&frozen, 99).iter().all(|&x| x == UNREACHED));
    }

    #[test]
    fn csr_kernel_matches_distances_even_through_the_bottom_up_switch() {
        use dgap::FrozenView;
        // Dense hub graph: forces the bottom-up heuristic (as in
        // `bottom_up_switch_on_dense_graph`) on the CSR path too.
        let n = 64u64;
        let mut g = ReferenceGraph::new(n as usize);
        for v in 1..n {
            g.add_edge(0, v);
            g.add_edge(v, 0);
            g.add_edge(v, (v % 7) + 1);
            g.add_edge((v % 7) + 1, v);
        }
        for g in [g, two_triangles(), path4()] {
            let frozen = FrozenView::capture(&g);
            let ds = distances_from_parents(&frozen, &bfs(&frozen, 0), 0);
            let dc = distances_from_parents(&frozen, &bfs_csr(&frozen, 0), 0);
            assert_eq!(ds, dc);
        }
        assert!(bfs_csr(&FrozenView::capture(&ReferenceGraph::new(0)), 0).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = ReferenceGraph::new(0);
        assert!(bfs(&g, 0).is_empty());
        assert!(bfs_parallel(&g, 0).is_empty());
    }
}
