//! The service loop: ownership of the engine, worker threads, epoch cache.
//!
//! Every counter the service keeps lives in its per-instance
//! [`obs::Registry`] (shared with the ingest pipeline via
//! [`IngestPipeline::with_registry`]), so [`ServiceStats`] is assembled
//! from **one** `Registry::snapshot()` pass instead of field-by-field
//! relaxed loads interleaved with concurrent writers, and the same
//! registry answers [`Query::Metrics`] with the full telemetry plane —
//! per-query-kind latency histograms, epoch-cache hit/miss, refresh and
//! unified-merge timings — merged with the process-global registry (DGAP
//! capture/recovery) and the work-stealing pool's counters.

use crate::request::{ClientOp, OpStatus, Query, QueryResult, Request, Response, ServiceStats};
use dgap::{Dgap, DgapConfig, DynamicGraph, GraphError, GraphResult, GraphView, Update};
use obs::{Counter, Histogram, MetricsSnapshot, Registry};
use pmem::{PmemConfig, PmemPool};
use sharded::{
    ClientTable, IngestPipeline, OwnedShardedView, ShardedConfig, ShardedGraph, ShardedRecovery,
    Ticket, UnifiedView,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the service sizes its engine and worker pool.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Sharding and queueing of the underlying engine.
    pub sharded: ShardedConfig,
    /// Number of request-serving worker threads.
    pub workers: usize,
    /// Vertex capacity hint for the DGAP shards.
    pub num_vertices: usize,
    /// Edge-record capacity hint for the DGAP shards.
    pub num_edges: usize,
    /// Emulated-PM pool capacity **per shard**, in bytes.
    pub pool_bytes: usize,
    /// Opt-in background integrity scrubber: when `Some(interval)`, a
    /// dedicated thread re-verifies every healthy shard's checksummed
    /// regions ([`Dgap::verify`]) once per interval, counting passes,
    /// bytes and per-region errors in the service registry
    /// (`service_scrub_passes`, `service_scrub_bytes`,
    /// `integrity_errors`).  `None` (the default) disables it.
    pub scrub_interval: Option<Duration>,
    /// Scrubber rate limit, in verified bytes per second: after each
    /// shard's pass the scrubber sleeps long enough to keep its average
    /// read bandwidth at or under this, so scrubbing never monopolises
    /// the (emulated) PM the request path is serving from.
    pub scrub_rate_bytes_per_sec: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            sharded: ShardedConfig::default(),
            workers: 4,
            num_vertices: 1 << 16,
            num_edges: 1 << 20,
            pool_bytes: 256 << 20,
            scrub_interval: None,
            scrub_rate_bytes_per_sec: 64 << 20,
        }
    }
}

impl ServiceConfig {
    /// A tiny configuration for unit tests: two shards, two workers, small
    /// pools.
    pub fn small_test() -> Self {
        ServiceConfig {
            sharded: ShardedConfig::small_test(),
            workers: 2,
            num_vertices: 256,
            num_edges: 1 << 14,
            pool_bytes: 24 << 20,
            ..ServiceConfig::default()
        }
    }

    /// Builder-style: enable the background integrity scrubber.
    pub fn scrub_every(mut self, interval: Duration) -> Self {
        self.scrub_interval = Some(interval);
        self
    }
}

/// One queued request plus the channel its answer goes back on.
pub(crate) struct Envelope {
    pub(crate) request: Request,
    pub(crate) reply: ReplyTo,
}

/// Where a served request's answer goes.
pub(crate) enum ReplyTo {
    /// A private per-call channel ([`crate::GraphClient`]'s round trip).
    Direct(Sender<Response>),
    /// A shared, tag-routed channel: the answer is sent as `(tag,
    /// response)` so many in-flight requests can share one reply stream and
    /// complete out of order ([`RawClient`], the network front-end's hook).
    Tagged(u64, Sender<(u64, Response)>),
}

/// A raw, tag-routing handle onto a running [`GraphService`] — the hook a
/// network front-end multiplexes many connections through.
///
/// Unlike [`crate::GraphClient`], a submission does not block for its
/// answer: the caller picks a `tag`, hands over a shared reply sender, and
/// whichever worker serves the request sends `(tag, response)` back on it.
/// Requests submitted with different tags onto the same reply channel
/// complete **out of order** whenever the worker pool overlaps them — the
/// property a pipelined wire protocol needs.  Tag allocation is entirely
/// the caller's affair; the service never inspects tags.
#[derive(Clone)]
pub struct RawClient {
    sender: Sender<Envelope>,
}

impl RawClient {
    /// Queue `request`; its answer will arrive as `(tag, response)` on
    /// `reply`.  [`GraphError::Closed`] when the service has shut down.  A
    /// dropped reply receiver is not an error — the answer is discarded,
    /// matching [`crate::GraphClient`]'s abandoned-call semantics.
    pub fn submit(
        &self,
        tag: u64,
        request: Request,
        reply: Sender<(u64, Response)>,
    ) -> GraphResult<()> {
        self.sender
            .send(Envelope {
                request,
                reply: ReplyTo::Tagged(tag, reply),
            })
            .map_err(|_| GraphError::Closed)
    }
}

/// The epoch-cached snapshot, keyed by the **per-shard** watermarks it was
/// captured at: shard `i`'s snapshot is current as long as watermark `i`
/// has not moved, independently of the other shards.
///
/// Two shapes of the same epoch live side by side: the shard-routed
/// composite (the incremental-capture unit, and what `Degree`/`Neighbors`
/// answer from via its per-shard slices) and the [`UnifiedView`] merged
/// global CSR the analytics queries run their zero-dispatch `*_csr`
/// kernels over.  The unified CSR is built **lazily**, on the first
/// analytics query of the epoch: write-heavy traffic answering only point
/// reads never pays the merge.
struct CachedView {
    watermarks: Vec<u64>,
    view: Arc<OwnedShardedView>,
    /// This epoch's unified CSR, if an analytics query has asked for it.
    unified: Option<Arc<UnifiedView>>,
    /// The newest unified CSR from an earlier epoch — the base the next
    /// lazy merge refreshes incrementally (shards whose `Arc<FrozenView>`
    /// was carried through every epoch since stay unmerged).
    unified_base: Option<Arc<UnifiedView>>,
}

/// Per-query-kind latency histograms, all named `service_query_nanos` with
/// a `kind` label — resolved once at startup so the request path records
/// through pre-registered handles.
struct QueryLatency {
    degree: Arc<Histogram>,
    neighbors: Arc<Histogram>,
    stats: Arc<Histogram>,
    pagerank: Arc<Histogram>,
    bfs: Arc<Histogram>,
    components: Arc<Histogram>,
    metrics: Arc<Histogram>,
    triangles: Arc<Histogram>,
    kcore: Arc<Histogram>,
    topk_degree: Arc<Histogram>,
    topk_pagerank: Arc<Histogram>,
    khop: Arc<Histogram>,
}

impl QueryLatency {
    fn new(registry: &Registry) -> QueryLatency {
        let h = |kind: &str| {
            registry.histogram_with("service_query_nanos", &format!("kind=\"{kind}\""))
        };
        QueryLatency {
            degree: h("degree"),
            neighbors: h("neighbors"),
            stats: h("stats"),
            pagerank: h("pagerank"),
            bfs: h("bfs"),
            components: h("components"),
            metrics: h("metrics"),
            triangles: h("triangles"),
            kcore: h("kcore"),
            topk_degree: h("topk_degree"),
            topk_pagerank: h("topk_pagerank"),
            khop: h("khop"),
        }
    }

    fn for_query(&self, query: &Query) -> &Arc<Histogram> {
        match query {
            Query::Degree(_) => &self.degree,
            Query::Neighbors(_) => &self.neighbors,
            Query::Stats => &self.stats,
            Query::Pagerank { .. } => &self.pagerank,
            Query::Bfs { .. } => &self.bfs,
            Query::ConnectedComponents => &self.components,
            Query::Metrics => &self.metrics,
            Query::TriangleCount => &self.triangles,
            Query::KCore { .. } => &self.kcore,
            Query::TopKDegree { .. } => &self.topk_degree,
            Query::TopKPagerank { .. } => &self.topk_pagerank,
            Query::KHop { .. } => &self.khop,
        }
    }
}

/// The previous analytics answers, keyed by the **identity** of the
/// unified CSR they were computed over ([`UnifiedView::view_id`] — view
/// ids are never recycled, so a stale entry can never be mistaken for the
/// current epoch's).  Storing the id rather than the `Arc<UnifiedView>`
/// means the cache never pins an old epoch's CSR in memory.
///
/// When the current unified view says it was `refreshed_from` the cached
/// entry's view and carries a [`sharded::DeltaTracker`], the incremental
/// kernels seed from the cached result and re-relax only the delta's
/// neighbourhood; otherwise the full kernel runs (counted as a fallback if
/// a cache entry existed to seed from).
#[derive(Default)]
struct AnalyticsCache {
    pagerank: Option<PrEntry>,
    components: Option<CcEntry>,
}

/// A cached PageRank trajectory (see [`analytics::RankCache`]).
#[derive(Clone)]
struct PrEntry {
    view_id: u64,
    iterations: usize,
    cache: Arc<analytics::RankCache>,
}

/// Cached connected-component labels.
#[derive(Clone)]
struct CcEntry {
    view_id: u64,
    labels: Arc<Vec<u64>>,
}

/// This process lifetime's ticket ledger for one durable client: op id →
/// the [`Ticket`] its first submission produced, so a duplicate
/// `(client_id, op_id)` is acknowledged with the **original** ticket
/// instead of being applied again.  Entries at or below the durable
/// watermark are pruned on each new submission; after a restart the ledger
/// starts empty and the durable per-shard client tables take over (a
/// duplicate of an already-committed op is acked with an
/// already-satisfied empty ticket).
#[derive(Default)]
struct ClientLedger {
    tickets: BTreeMap<u64, Ticket>,
}

/// Don't retain a PageRank trajectory above this many `f64` entries
/// (`(iterations + 1) × V`) — the per-iteration history is what makes the
/// incremental replay exact, but it is an O(iterations × V) memory cost
/// the service only accepts while it stays modest (≤ 512 MiB here).
const RANK_CACHE_MAX_ENTRIES: usize = 1 << 26;

pub(crate) struct Inner {
    graph: Arc<ShardedGraph<Dgap>>,
    pipeline: IngestPipeline<Dgap>,
    cache: Mutex<Option<CachedView>>,
    /// Previous-epoch analytics results the incremental kernels seed from.
    /// A separate lock from the epoch cache: analytics recomputes run for
    /// milliseconds and must not stall point reads.
    analytics: Mutex<AnalyticsCache>,
    /// The instance registry — shared with the pipeline, so one snapshot
    /// pass covers both layers.
    registry: Arc<Registry>,
    /// Queries answered without re-capturing (watermarks stood).
    epoch_hits: Arc<Counter>,
    /// Epoch refreshes — each one is an epoch-cache miss.
    epoch_misses: Arc<Counter>,
    shard_captures: Arc<Counter>,
    refresh_nanos: Arc<Histogram>,
    unified_shard_merges: Arc<Counter>,
    unify_nanos: Arc<Histogram>,
    served: Arc<Counter>,
    /// Analytics answered incrementally (or straight from the cache) —
    /// the epoch delta was small enough to re-relax instead of recompute.
    incremental_hits: Arc<Counter>,
    /// Analytics that had a previous result to seed from but recomputed in
    /// full anyway (delta too large, deletions for CC, epoch lineage
    /// broken).  A cold first compute counts as neither hit nor fallback.
    incremental_fallbacks: Arc<Counter>,
    /// Frontier sizes the incremental kernels actually relaxed (PageRank:
    /// peak per-iteration frontier; CC: changed-vertex count).
    incremental_frontier: Arc<Histogram>,
    query_latency: QueryLatency,
    /// Per-client ticket ledgers for the exactly-once mutation path.  The
    /// outer lock only guards the map shape; each client's ledger lock is
    /// held **across** its pipeline submission, so two concurrent
    /// duplicates of the same `(client, op)` serialise and exactly one of
    /// them applies.
    clients: Mutex<HashMap<u64, Arc<Mutex<ClientLedger>>>>,
    /// Duplicate `(client, op)` submissions answered from the ledger or the
    /// durable watermark instead of being re-applied.
    dedup_hits: Arc<Counter>,
    /// Shards quarantined at startup (persistent image failed integrity
    /// verification), ascending.  Empty on a healthy service.  The request
    /// path consults this on every mutation and every read so a
    /// quarantined shard's empty placeholder can never silently answer.
    quarantined: Vec<usize>,
    shutdown: AtomicBool,
}

impl Inner {
    /// The snapshot queries are served from, refreshed **incrementally**
    /// when the pipeline's write watermarks have advanced since the cached
    /// capture: only shards whose own watermark moved are re-captured
    /// (concurrently, on the work-stealing pool); the rest carry their
    /// `Arc<FrozenView>` over from the cached epoch.  A write burst
    /// confined to one shard therefore costs one shard's capture, not a
    /// full `O(V + E)` rebuild.  Returns the total watermark the snapshot
    /// was captured at alongside it.
    ///
    /// The lock serialises captures (at most one partial walk per epoch,
    /// never one per query); query *evaluation* runs outside it on the
    /// returned `Arc`.
    fn with_current_epoch<R>(&self, f: impl FnOnce(&mut CachedView) -> R) -> R {
        let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
        // Read the watermarks *after* taking the lock: a pre-lock read
        // could be older than what a racing refresh just cached, and
        // storing the stale vector back would make the next query
        // re-capture shards needlessly.
        let watermarks = self.pipeline.shard_watermarks();
        let fresh = matches!(cache.as_ref(), Some(c) if c.watermarks == watermarks);
        if fresh {
            self.epoch_hits.inc();
        } else {
            let span = self.refresh_nanos.span();
            // Carry over every shard whose watermark stands; a lane
            // that advanced (or a cold cache) gets `None` = re-capture.
            let reuse: Vec<Option<Arc<dgap::FrozenView>>> = match cache.as_ref() {
                Some(cached) => watermarks
                    .iter()
                    .enumerate()
                    .map(|(shard, mark)| {
                        (cached.watermarks.get(shard) == Some(mark))
                            .then(|| cached.view.shard_view_arc(shard))
                    })
                    .collect(),
                None => vec![None; watermarks.len()],
            };
            let captured = reuse.iter().filter(|slot| slot.is_none()).count() as u64;
            let view = Arc::new(self.graph.owned_view_reusing(reuse));
            self.epoch_misses.inc();
            self.shard_captures.add(captured);
            drop(span);
            // The epoch's unified CSR is built lazily; keep the newest one
            // we ever built as the base for that incremental merge.
            let unified_base = cache.take().and_then(|c| c.unified.or(c.unified_base));
            *cache = Some(CachedView {
                watermarks,
                view,
                unified: None,
                unified_base,
            });
        }
        f(cache.as_mut().expect("cache populated above"))
    }

    fn current_view_at(&self) -> (u64, Arc<OwnedShardedView>) {
        self.with_current_epoch(|c| (c.watermarks.iter().sum(), Arc::clone(&c.view)))
    }

    fn current_view(&self) -> Arc<OwnedShardedView> {
        self.current_view_at().1
    }

    /// The epoch's unified CSR, merging it now if no analytics query asked
    /// for it yet this epoch.  The merge is incremental over the newest
    /// previously built unified CSR: the carried `Arc<FrozenView>`s double
    /// as the change signal, so only shards re-captured since then pay the
    /// span gather.
    ///
    /// The merge itself runs **outside** the cache lock — a cold unify is
    /// `O(V + E)`, and point reads share that mutex, so they must not
    /// stall behind it.  Two analytics queries racing into a cold epoch
    /// may merge twice; the first store wins and both results are
    /// equivalent.
    fn current_unified(&self) -> Arc<UnifiedView> {
        let mut ready = None;
        let (view, base) = self.with_current_epoch(|c| {
            ready = c.unified.clone();
            (Arc::clone(&c.view), c.unified_base.clone())
        });
        if let Some(unified) = ready {
            return unified;
        }
        let span = self.unify_nanos.span();
        let unified = Arc::new(match &base {
            Some(base) => base.refreshed(&view),
            None => UnifiedView::unify(&view),
        });
        self.unified_shard_merges
            .add(unified.merged_shards() as u64);
        drop(span);
        self.with_current_epoch(|c| {
            if Arc::ptr_eq(&c.view, &view) {
                // Still the epoch we merged: install unless a racing query
                // beat us to it (theirs is equivalent — serve it).
                if let Some(winner) = &c.unified {
                    return Arc::clone(winner);
                }
                c.unified = Some(Arc::clone(&unified));
            } else if c.unified.is_none() && c.unified_base.is_none() {
                // The epoch advanced while we merged.  Seed our CSR as
                // the base for the next (current-epoch) incremental merge
                // only if none is carried — a carried base may come from a
                // *newer* racing merge than ours, and replacing it would
                // make the next merge re-gather shards needlessly.  The
                // caller gets the snapshot consistent with the epoch it
                // entered at either way.
                c.unified_base = Some(Arc::clone(&unified));
            }
            unified
        })
    }

    /// The epoch's PageRank vector, served incrementally when possible.
    ///
    /// Resolution order: (1) the cached trajectory was computed over this
    /// very unified view → answer straight from it; (2) this view was
    /// refreshed **from** the cached entry's view and carries a delta →
    /// [`analytics::pagerank_incremental`] re-relaxes only the delta's
    /// neighbourhood (both count as hits); (3) anything else → full
    /// recompute, counted as a fallback iff a same-schedule entry existed.
    /// The new trajectory replaces the cache entry either way (subject to
    /// the [`RANK_CACHE_MAX_ENTRIES`] retention cap), so the next epoch
    /// seeds from this one.
    fn pagerank_ranks(&self, iterations: usize) -> Vec<f64> {
        let unified = self.current_unified();
        let prev = {
            let cache = self.analytics.lock().unwrap_or_else(|p| p.into_inner());
            cache.pagerank.clone()
        };
        let seeded = matches!(prev.as_ref(), Some(e) if e.iterations == iterations);
        if let Some(entry) = prev {
            if entry.iterations == iterations {
                if entry.view_id == unified.view_id() {
                    self.incremental_hits.inc();
                    return entry.cache.ranks().to_vec();
                }
                if unified.refreshed_from() == Some(entry.view_id) {
                    if let Some(delta) = unified.delta() {
                        if let Some(run) = analytics::pagerank_incremental(
                            &*unified,
                            &entry.cache,
                            delta.changed_vertices(),
                        ) {
                            self.incremental_hits.inc();
                            self.incremental_frontier.record(run.frontier_peak as u64);
                            let ranks = run.cache.ranks().to_vec();
                            self.store_pagerank(unified.view_id(), iterations, run.cache);
                            return ranks;
                        }
                    }
                }
            }
        }
        if seeded {
            self.incremental_fallbacks.inc();
        }
        // Record the trajectory only when it is small enough to retain —
        // otherwise run the plain kernel and skip the history cost.
        let n = unified.num_vertices();
        if (iterations + 1).saturating_mul(n) <= RANK_CACHE_MAX_ENTRIES {
            let cache = analytics::pagerank_csr_recording(&*unified, iterations);
            let ranks = cache.ranks().to_vec();
            self.store_pagerank(unified.view_id(), iterations, cache);
            ranks
        } else {
            analytics::pagerank_csr(&*unified, iterations)
        }
    }

    fn store_pagerank(&self, view_id: u64, iterations: usize, cache: analytics::RankCache) {
        let entry = PrEntry {
            view_id,
            iterations,
            cache: Arc::new(cache),
        };
        let mut guard = self.analytics.lock().unwrap_or_else(|p| p.into_inner());
        // Never replace a newer epoch's entry with ours (view ids grow
        // monotonically, so a racing compute over a fresher view wins).
        if guard.pagerank.as_ref().is_none_or(|e| e.view_id <= view_id) {
            guard.pagerank = Some(entry);
        }
    }

    /// The epoch's connected-component labels, served incrementally when
    /// the delta since the cached epoch is insert-only (inserts can only
    /// merge components — [`analytics::cc_incremental`] is then *exact*).
    fn component_labels(&self) -> Vec<u64> {
        let unified = self.current_unified();
        let prev = {
            let cache = self.analytics.lock().unwrap_or_else(|p| p.into_inner());
            cache.components.clone()
        };
        let seeded = prev.is_some();
        if let Some(entry) = prev {
            if entry.view_id == unified.view_id() {
                self.incremental_hits.inc();
                return (*entry.labels).clone();
            }
            if unified.refreshed_from() == Some(entry.view_id) {
                if let Some(delta) = unified.delta() {
                    if let Some(labels) = analytics::cc_incremental(
                        &*unified,
                        &entry.labels,
                        delta.changed_vertices(),
                        delta.has_deletions(),
                    ) {
                        self.incremental_hits.inc();
                        self.incremental_frontier.record(delta.len() as u64);
                        self.store_components(unified.view_id(), labels.clone());
                        return labels;
                    }
                }
            }
        }
        if seeded {
            self.incremental_fallbacks.inc();
        }
        let labels = analytics::cc_csr(&*unified);
        self.store_components(unified.view_id(), labels.clone());
        labels
    }

    fn store_components(&self, view_id: u64, labels: Vec<u64>) {
        let entry = CcEntry {
            view_id,
            labels: Arc::new(labels),
        };
        let mut guard = self.analytics.lock().unwrap_or_else(|p| p.into_inner());
        if guard
            .components
            .as_ref()
            .is_none_or(|e| e.view_id <= view_id)
        {
            guard.components = Some(entry);
        }
    }

    /// Like every query, `Stats` answers from the epoch cache: the snapshot
    /// sizes and the watermark describe the *same* capture, and the capture
    /// is only (re)paid when the watermark has moved.
    ///
    /// Every counter below comes out of **one** [`Registry::snapshot`]
    /// pass over the shared service + pipeline registry (the epoch view is
    /// resolved *first*, so a `Stats` query that refreshed the cache sees
    /// its own refresh counted).
    fn stats(&self) -> ServiceStats {
        let (watermark, view) = self.current_view_at();
        let snap = self.registry.snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        let hist_sum = |name: &str| snap.histogram(name).map_or(0, |h| h.sum);
        ServiceStats {
            num_vertices: view.num_vertices(),
            num_edges: view.num_edges(),
            num_shards: self.graph.num_shards(),
            ops_submitted: counter("pipeline_ops_submitted"),
            ops_applied: counter("pipeline_ops_applied"),
            deletes_applied: counter("pipeline_deletes_applied"),
            watermark,
            snapshot_refreshes: counter("service_epoch_cache_misses"),
            shard_captures: counter("service_shard_captures"),
            refresh_nanos: hist_sum("service_refresh_nanos"),
            unified_shard_merges: counter("service_unified_shard_merges"),
            unify_nanos: hist_sum("service_unify_nanos"),
            requests_served: counter("service_requests_served"),
            degraded_shards: self.quarantined.len(),
        }
    }

    /// The full telemetry plane: the instance registry (service + pipeline)
    /// merged with the process-global one (DGAP capture/recovery) and the
    /// work-stealing pool's counters.
    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.merge(obs::global().snapshot());
        let pool = rayon::pool_stats();
        snap.push_counter("pool_workers", "", pool.workers as u64);
        snap.push_counter("pool_steals", "", pool.steals);
        snap.push_counter("pool_injected", "", pool.injected);
        snap.push_counter("pool_executed", "", pool.executed);
        snap.push_counter("pool_sleeps", "", pool.sleeps);
        snap
    }

    /// The structured degraded-mode error: which shards are out.
    fn degraded_error(&self) -> GraphError {
        GraphError::Degraded {
            shards: self.quarantined.clone(),
        }
    }

    /// The shard that owns `v` is quarantined — its adjacency is simply
    /// gone from the serving set, so an answer about `v` would be silently
    /// wrong rather than partial.
    fn owned_by_quarantined(&self, v: dgap::VertexId) -> bool {
        !self.quarantined.is_empty() && self.quarantined.contains(&self.graph.shard_of(v))
    }

    fn answer(&self, query: Query) -> GraphResult<QueryResult> {
        if !self.quarantined.is_empty() {
            // Vertex-rooted reads whose root lives on a quarantined shard
            // have no trustworthy answer at all: reject with the
            // structured degraded error instead of serving the empty
            // placeholder's view of the vertex.
            let rooted = match query {
                Query::Degree(v) | Query::Neighbors(v) => Some(v),
                Query::Bfs { source } | Query::KHop { source, .. } => Some(source),
                _ => None,
            };
            if let Some(v) = rooted {
                if self.owned_by_quarantined(v) {
                    return Err(self.degraded_error());
                }
            }
        }
        let result = self.answer_query(query);
        // While degraded, any result whose scope is the whole graph covers
        // only the surviving shards — annotate it so a partial answer can
        // never pass for a complete one.  Exact answers stay unwrapped:
        // point reads rooted on a healthy shard (the full adjacency lives
        // there) and the service's own counters.
        let exact = matches!(
            query,
            Query::Degree(_) | Query::Neighbors(_) | Query::Stats | Query::Metrics
        );
        if self.quarantined.is_empty() || exact {
            Ok(result)
        } else {
            Ok(QueryResult::Partial {
                degraded_shards: self.quarantined.clone(),
                result: Box::new(result),
            })
        }
    }

    fn answer_query(&self, query: Query) -> QueryResult {
        let _span = self.query_latency.for_query(&query).span();
        match query {
            Query::Stats => QueryResult::Stats(self.stats()),
            // Metrics deliberately bypasses the epoch cache (and therefore
            // `current_view`): observing the service must not perturb the
            // hit/miss counters being observed.
            Query::Metrics => QueryResult::Metrics(Box::new(self.metrics())),
            // Point reads answer from the composite (one shard hash, one
            // slice read — no reason to force a unified merge); the
            // analytics run the zero-dispatch `*_csr` kernels over the
            // epoch's unified CSR (merged lazily on the first analytics
            // query of the epoch, incrementally across epochs).
            Query::Degree(v) => QueryResult::Degree(self.current_view().degree(v)),
            Query::Neighbors(v) => {
                QueryResult::Neighbors(self.current_view().neighbor_slice(v).to_vec())
            }
            Query::Pagerank { iterations } => {
                QueryResult::Pagerank(self.pagerank_ranks(iterations))
            }
            Query::Bfs { source } => {
                QueryResult::Bfs(analytics::bfs_csr(&*self.current_unified(), source))
            }
            Query::ConnectedComponents => QueryResult::ConnectedComponents(self.component_labels()),
            Query::TriangleCount => {
                QueryResult::TriangleCount(analytics::triangle_count_csr(&*self.current_unified()))
            }
            Query::KCore { k } => {
                QueryResult::KCore(analytics::k_core_csr(&*self.current_unified(), k))
            }
            Query::TopKDegree { k } => QueryResult::TopKDegree(analytics::top_k_degree(
                &*self.current_unified(),
                k as usize,
            )),
            // Answered from the maintained rank vector (default schedule),
            // so a hot cache makes this a selection, not a recompute.
            Query::TopKPagerank { k } => QueryResult::TopKPagerank(analytics::top_k_pagerank(
                &self.pagerank_ranks(analytics::pagerank::DEFAULT_ITERATIONS),
                k as usize,
            )),
            Query::KHop { source, depth } => QueryResult::KHop(analytics::khop_neighborhood_csr(
                &*self.current_unified(),
                source,
                depth as usize,
            )),
        }
    }

    /// The exactly-once mutation path: deduplicate against this lifetime's
    /// ticket ledger *and* the durable per-shard watermarks, submitting the
    /// batch as a tagged `(client, op)` only when neither has seen it.
    ///
    /// The client's ledger lock is held across the whole resolution —
    /// watermark read, ledger lookup, and pipeline submission — so two
    /// concurrent duplicates of the same op serialise: the first one
    /// submits, the second one is acked with the first one's ticket.
    fn mutate_as(&self, ops: &[Update], client: ClientOp) -> Response {
        let ClientOp { client_id, op_id } = client;
        if client_id == 0 || op_id == 0 {
            return Response::Error(GraphError::Protocol(
                "client_id and op_id must be non-zero".into(),
            ));
        }
        let ledger = {
            let mut map = self.clients.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(map.entry(client_id).or_default())
        };
        let mut ledger = ledger.lock().unwrap_or_else(|p| p.into_inner());
        let durable = self.pipeline.client_committed(client_id).unwrap_or(0);
        if op_id <= durable {
            // Durably committed in some earlier lifetime (or pruned from
            // the ledger): ack with the original ticket if we still have
            // it, otherwise with an already-satisfied empty one.
            self.dedup_hits.inc();
            let ticket = ledger
                .tickets
                .get(&op_id)
                .cloned()
                .unwrap_or_else(Ticket::empty);
            return Response::Mutated {
                ticket,
                ops: ops.len(),
            };
        }
        if let Some(ticket) = ledger.tickets.get(&op_id) {
            // Submitted this lifetime and still in flight (or committed
            // since the watermark read): same ticket, no second apply.
            self.dedup_hits.inc();
            return Response::Mutated {
                ticket: ticket.clone(),
                ops: ops.len(),
            };
        }
        match self.pipeline.submit_tagged(ops, client_id, op_id) {
            Ok(ticket) => {
                ledger.tickets = ledger.tickets.split_off(&(durable + 1));
                ledger.tickets.insert(op_id, ticket.clone());
                Response::Mutated {
                    ticket,
                    ops: ops.len(),
                }
            }
            Err(err) => Response::Error(err),
        }
    }

    /// Answer [`Request::ProbeOp`]: committed at or below the durable
    /// watermark, not committed for a known client above it, unknown when
    /// no shard (and no in-memory ledger) has ever heard of the client.
    fn probe_op(&self, client_id: u64, op_id: u64) -> Response {
        if client_id == 0 || op_id == 0 {
            return Response::Error(GraphError::Protocol(
                "client_id and op_id must be non-zero".into(),
            ));
        }
        let status = match self.pipeline.client_committed(client_id) {
            Some(watermark) if op_id <= watermark => OpStatus::Committed,
            Some(_) => OpStatus::NotCommitted,
            None => {
                let known = self
                    .clients
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .contains_key(&client_id);
                if known {
                    OpStatus::NotCommitted
                } else {
                    OpStatus::Unknown
                }
            }
        };
        Response::OpStatus(status)
    }

    /// Does any update in the batch route to a quarantined shard?  Such a
    /// batch must be rejected up front: the placeholder instance would
    /// accept the write and silently lose it.
    fn ops_touch_quarantined(&self, ops: &[Update]) -> bool {
        !self.quarantined.is_empty()
            && ops.iter().any(|op| {
                let routed = match *op {
                    Update::InsertVertex(v) => v,
                    Update::InsertEdge(src, _) | Update::DeleteEdge(src, _) => src,
                };
                self.quarantined.contains(&self.graph.shard_of(routed))
            })
    }

    fn handle(&self, request: Request) -> Response {
        match request {
            Request::Mutate { ops, client } => {
                if self.ops_touch_quarantined(&ops) {
                    // Retryable: once the operator repairs or replaces the
                    // quarantined shard and restarts, the same batch (same
                    // client/op identity) applies cleanly.
                    return Response::Error(self.degraded_error());
                }
                match client {
                    Some(client) => self.mutate_as(&ops, client),
                    None => match self.pipeline.submit(&ops) {
                        Ok(ticket) => Response::Mutated {
                            ticket,
                            ops: ops.len(),
                        },
                        Err(err) => Response::Error(err),
                    },
                }
            }
            Request::Wait {
                ticket,
                deadline_ms,
            } => {
                // A ticket decoded off a transport can carry any target
                // vector; one whose shape disagrees with this engine's
                // shard count never came from this pipeline, so reject it
                // here instead of letting the extra lanes be ignored.
                let lanes = ticket.targets().len();
                if lanes != 0 && lanes != self.graph.num_shards() {
                    return Response::Error(GraphError::Protocol(format!(
                        "wait ticket names {} shards, engine has {}",
                        lanes,
                        self.graph.num_shards()
                    )));
                }
                let deadline = deadline_ms.map(Duration::from_millis);
                match self.pipeline.wait_for_deadline(&ticket, deadline) {
                    Ok(()) => Response::Waited,
                    Err(err) => Response::Error(err),
                }
            }
            Request::Flush => match self.pipeline.flush_all() {
                Ok(()) => Response::Flushed,
                Err(err) => Response::Error(err),
            },
            Request::ProbeOp { client_id, op_id } => self.probe_op(client_id, op_id),
            Request::Query(query) => match self.answer(query) {
                Ok(result) => Response::Answer(result),
                Err(err) => Response::Error(err),
            },
        }
    }
}

/// The request/response front-end: owns a `ShardedGraph<Dgap>` and its
/// [`IngestPipeline`], and answers typed [`Request`]s from any number of
/// [`crate::GraphClient`] handles on a pool of worker threads.
///
/// Dropping the service (or calling [`GraphService::shutdown`]) stops the
/// workers; clients still holding handles get [`dgap::GraphError::Closed`]
/// from then on.
pub struct GraphService {
    inner: Arc<Inner>,
    sender: Option<Sender<Envelope>>,
    workers: Vec<JoinHandle<()>>,
    /// The background integrity scrubber, when configured.
    scrubber: Option<JoinHandle<()>>,
}

impl GraphService {
    /// Build a fresh engine and start the worker pool.
    pub fn start(config: ServiceConfig) -> GraphResult<GraphService> {
        config.sharded.validate();
        assert!(config.workers > 0, "a service needs at least one worker");
        let pool_bytes = config.pool_bytes;
        let graph = Arc::new(ShardedGraph::create_dgap(
            config.sharded.num_shards,
            config.num_vertices,
            config.num_edges,
            |_| PmemConfig::with_capacity(pool_bytes).persistence_tracking(false),
        )?);
        Self::launch(graph, &config, Vec::new())
    }

    /// Restart the service over pools that already contain one shard each
    /// (the counterpart to [`GraphService::start`] after a process restart
    /// or a crash): every shard is re-opened via
    /// [`ShardedGraph::open_dgap`] — per-shard `Dgap::open`s fanned out on
    /// the work-stealing pool, crashed shards rebuilt with the parallel
    /// recovery scans — and the worker pool starts over the recovered
    /// graph.  `pools[i]` must be shard `i`'s pool from the previous
    /// generation, in the original order, and the shard count must match
    /// `config.sharded.num_shards`.
    ///
    /// Returns the service together with the [`ShardedRecovery`] report of
    /// which restart path each shard took.
    ///
    /// ## Degraded startup
    ///
    /// Shards whose persistent image fails integrity verification (every
    /// open re-checksums the metadata seals *and* — here, unlike embedded
    /// opens — the full edge array against the CRC table sealed at
    /// shutdown) are **quarantined** rather than refusing the whole
    /// service: the service comes up over the surviving shards, mutations
    /// routed at a quarantined shard answer the retryable
    /// [`GraphError::Degraded`], vertex reads owned by one are rejected
    /// with the same error, and whole-graph analytics come back wrapped in
    /// [`QueryResult::Partial`].  Check [`ShardedRecovery::is_degraded`]
    /// (or the `service_degraded_shards` gauge / [`ServiceStats`]) after
    /// opening.
    pub fn open(
        config: ServiceConfig,
        pools: Vec<Arc<PmemPool>>,
    ) -> GraphResult<(GraphService, ShardedRecovery)> {
        config.sharded.validate();
        assert!(config.workers > 0, "a service needs at least one worker");
        if pools.len() != config.sharded.num_shards {
            return Err(GraphError::Other(format!(
                "GraphService::open got {} pools for {} shards",
                pools.len(),
                config.sharded.num_shards
            )));
        }
        let per_shard_edges = config.num_edges.div_ceil(config.sharded.num_shards.max(1));
        let num_vertices = config.num_vertices;
        let (graph, recovery) = ShardedGraph::open_dgap(pools, |_| {
            DgapConfig::for_graph(num_vertices, per_shard_edges).verify_data_on_open(true)
        })?;
        let service = Self::launch(Arc::new(graph), &config, recovery.quarantined_shards())?;
        Ok((service, recovery))
    }

    /// Start the request loop and worker pool over an already-built engine.
    ///
    /// Opens (or creates) each shard's durable [`ClientTable`] first —
    /// resolving any in-doubt crash cursor against the shard's record count
    /// — so the pipeline starts with the exactly-once path armed and
    /// [`ShardedGraph::open_dgap`]-recovered watermarks answering probes.
    fn launch(
        graph: Arc<ShardedGraph<Dgap>>,
        config: &ServiceConfig,
        mut quarantined: Vec<usize>,
    ) -> GraphResult<GraphService> {
        quarantined.sort_unstable();
        let registry = Arc::new(Registry::new());
        registry
            .gauge("service_degraded_shards")
            .set(quarantined.len() as i64);
        let tables = (0..graph.num_shards())
            .map(|i| {
                let shard = graph.shard(i);
                ClientTable::create_or_open(shard.pool(), shard.num_edges() as u64)
            })
            .collect::<GraphResult<Vec<_>>>()?;
        let pipeline = IngestPipeline::with_client_tables(
            Arc::clone(&graph),
            &config.sharded,
            Arc::clone(&registry),
            tables,
        );
        let inner = Arc::new(Inner {
            graph,
            pipeline,
            cache: Mutex::new(None),
            analytics: Mutex::new(AnalyticsCache::default()),
            epoch_hits: registry.counter("service_epoch_cache_hits"),
            epoch_misses: registry.counter("service_epoch_cache_misses"),
            shard_captures: registry.counter("service_shard_captures"),
            refresh_nanos: registry.histogram("service_refresh_nanos"),
            unified_shard_merges: registry.counter("service_unified_shard_merges"),
            unify_nanos: registry.histogram("service_unify_nanos"),
            served: registry.counter("service_requests_served"),
            incremental_hits: registry.counter("analytics_incremental_hits"),
            incremental_fallbacks: registry.counter("analytics_incremental_fallbacks"),
            incremental_frontier: registry.histogram("service_incremental_frontier_size"),
            query_latency: QueryLatency::new(&registry),
            clients: Mutex::new(HashMap::new()),
            dedup_hits: registry.counter("ingest_dedup_hits"),
            registry,
            quarantined,
            shutdown: AtomicBool::new(false),
        });
        let (sender, receiver) = mpsc::channel::<Envelope>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("graph-service-{i}"))
                    .spawn(move || serve_loop(&inner, &receiver))
                    .expect("spawn service worker")
            })
            .collect();
        let scrubber = config.scrub_interval.map(|interval| {
            let inner = Arc::clone(&inner);
            let rate = config.scrub_rate_bytes_per_sec.max(1);
            std::thread::Builder::new()
                .name("graph-scrubber".into())
                .spawn(move || scrub_loop(&inner, interval, rate))
                .expect("spawn integrity scrubber")
        });
        Ok(GraphService {
            inner,
            sender: Some(sender),
            workers,
            scrubber,
        })
    }

    /// A new client handle.  Handles are cheap, cloneable, and usable from
    /// any thread.
    pub fn client(&self) -> crate::GraphClient {
        crate::GraphClient::new(
            self.sender
                .as_ref()
                .expect("sender lives until shutdown")
                .clone(),
        )
    }

    /// A tag-routing [`RawClient`] handle for transports: submissions carry
    /// a caller-chosen tag and complete out of order on a shared reply
    /// channel, through the very same worker pool that serves
    /// [`crate::GraphClient`] traffic.
    pub fn raw_client(&self) -> RawClient {
        RawClient {
            sender: self
                .sender
                .as_ref()
                .expect("sender lives until shutdown")
                .clone(),
        }
    }

    /// The underlying sharded graph (direct read access for tests and
    /// embedding callers; requests keep flowing through clients).
    pub fn graph(&self) -> &Arc<ShardedGraph<Dgap>> {
        &self.inner.graph
    }

    /// Handles to each shard's persistent pool, in shard order.  Keep
    /// these across [`GraphService::shutdown`] (or a crash) to restart the
    /// service over the same data with [`GraphService::open`].
    pub fn shard_pools(&self) -> Vec<Arc<PmemPool>> {
        (0..self.inner.graph.num_shards())
            .map(|i| Arc::clone(self.inner.graph.shard(i).pool()))
            .collect()
    }

    /// Current service statistics (same numbers [`Query::Stats`] reports).
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// The full telemetry snapshot (same data [`Query::Metrics`] reports):
    /// this instance's registry merged with the process-global one and the
    /// work-stealing pool's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics()
    }

    /// This instance's metrics registry (shared with its ingest pipeline).
    /// Tests and embedding callers use it to tune the slow-op trace
    /// threshold or register their own series alongside the service's.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// The owned snapshot queries are being served from right now,
    /// refreshing it first if the write watermarks moved.  Embedding
    /// callers use this to run analysis out-of-band on exactly what the
    /// request path sees; tests use it to assert the incremental refresh
    /// reuses untouched shards' snapshots (`Arc::ptr_eq`).
    pub fn current_view(&self) -> Arc<OwnedShardedView> {
        self.inner.current_view()
    }

    /// The unified cross-shard CSR ([`UnifiedView`]) analytics queries are
    /// being served from right now, refreshing the epoch first if the
    /// write watermarks moved.  Same epoch as [`GraphService::current_view`];
    /// tests use it to assert the incremental re-merge touched only the
    /// shards that changed.
    pub fn current_unified(&self) -> Arc<UnifiedView> {
        self.inner.current_unified()
    }

    /// Shards quarantined at startup, ascending (empty = healthy).
    pub fn degraded_shards(&self) -> &[usize] {
        &self.inner.quarantined
    }

    /// Run the integrity verify pass over every shard **now**, returning
    /// one [`dgap::VerifyReport`] per shard (in shard order; quarantined
    /// shards report on their placeholder, which is trivially clean).
    /// This is the same pass the background scrubber runs on its
    /// interval; the reports never fail the service — operators act on
    /// them.
    pub fn verify(&self) -> Vec<dgap::VerifyReport> {
        (0..self.inner.graph.num_shards())
            .map(|i| self.inner.graph.shard(i).verify())
            .collect()
    }

    /// Stop accepting requests, drain the workers, and return once they
    /// have exited.  Equivalent to dropping the service, but explicit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Drop our sender so an idle channel disconnects promptly once the
        // last client handle goes away.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(scrubber) = self.scrubber.take() {
            let _ = scrubber.join();
        }
    }
}

impl Drop for GraphService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Background integrity scrubber: once per `interval`, re-verify every
/// healthy shard's checksummed regions and count what it finds.  Rate
/// limited: after each shard's pass the thread sleeps long enough to keep
/// its average verified-bytes bandwidth at or under `rate_bytes_per_sec`,
/// so a large graph's scrub spreads out instead of stealing the request
/// path's memory bandwidth in one burst.  Errors are **counted, not
/// acted on** (`integrity_errors{region=...}`): quarantine decisions
/// belong to restart time, when the damaged shard can be swapped out
/// atomically; a live scrub hit tells the operator to schedule exactly
/// that.
fn scrub_loop(inner: &Inner, interval: Duration, rate_bytes_per_sec: usize) {
    let passes = inner.registry.counter("service_scrub_passes");
    let bytes = inner.registry.counter("service_scrub_bytes");
    // Shutdown-aware sleep: check the flag every 10 ms so a scrubbing
    // service still stops promptly.
    let nap = |total: Duration| {
        let mut left = total;
        while !left.is_zero() {
            if inner.shutdown.load(Ordering::Acquire) {
                return false;
            }
            let step = left.min(Duration::from_millis(10));
            std::thread::sleep(step);
            left -= step;
        }
        !inner.shutdown.load(Ordering::Acquire)
    };
    loop {
        if !nap(interval) {
            return;
        }
        for shard in 0..inner.graph.num_shards() {
            if inner.quarantined.contains(&shard) {
                continue;
            }
            let report = inner.graph.shard(shard).verify();
            let verified = report.bytes_verified();
            bytes.add(verified);
            for region in &report.regions {
                if !matches!(region.state, dgap::RegionState::Clean) {
                    inner
                        .registry
                        .counter_with("integrity_errors", &format!("region=\"{}\"", region.region))
                        .inc();
                }
            }
            // Rate limit: verified bytes over allowed bandwidth.
            let pause = Duration::from_secs_f64(verified as f64 / rate_bytes_per_sec as f64);
            if !nap(pause) {
                return;
            }
        }
        passes.inc();
    }
}

/// Worker body: take the receiver lock, wait (bounded) for a request,
/// release the lock, serve the request.  The bounded wait keeps shutdown
/// prompt even while clients still hold live senders.
fn serve_loop(inner: &Inner, receiver: &Mutex<Receiver<Envelope>>) {
    loop {
        let next = {
            let receiver = receiver.lock().unwrap_or_else(|p| p.into_inner());
            receiver.recv_timeout(Duration::from_millis(20))
        };
        match next {
            Ok(Envelope { request, reply }) => {
                let response = inner.handle(request);
                inner.served.inc();
                // The client may have given up on the reply; that is its
                // business, not an error of ours.
                match reply {
                    ReplyTo::Direct(reply) => {
                        let _ = reply.send(response);
                    }
                    ReplyTo::Tagged(tag, reply) => {
                        let _ = reply.send((tag, response));
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgap::{GraphError, Update};

    #[test]
    fn serves_queries_from_an_epoch_cached_snapshot() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        let ticket = client
            .mutate(vec![Update::InsertEdge(1, 2), Update::InsertEdge(1, 3)])
            .unwrap();
        client.wait(&ticket).unwrap();
        assert_eq!(client.degree(1).unwrap(), 2);
        // A quiet pipeline must not re-materialise the snapshot per query.
        let before = service.stats().snapshot_refreshes;
        for _ in 0..10 {
            assert_eq!(client.neighbors(1).unwrap(), vec![2, 3]);
        }
        let after = service.stats().snapshot_refreshes;
        assert_eq!(
            before, after,
            "cache must be reused while the watermark stands"
        );
        service.shutdown();
    }

    #[test]
    fn snapshot_refreshes_when_the_watermark_advances() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        let t = client.mutate(vec![Update::InsertEdge(0, 1)]).unwrap();
        client.wait(&t).unwrap();
        assert_eq!(client.degree(0).unwrap(), 1);
        let t = client.mutate(vec![Update::InsertEdge(0, 2)]).unwrap();
        client.wait(&t).unwrap();
        assert_eq!(client.degree(0).unwrap(), 2, "new epoch, new snapshot");
    }

    #[test]
    fn single_shard_writes_refresh_only_that_shard() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        // Pick one vertex per shard (small_test has two shards).
        let graph = Arc::clone(service.graph());
        let va = (0..64u64).find(|&v| graph.shard_of(v) == 0).unwrap();
        let vb = (0..64u64).find(|&v| graph.shard_of(v) == 1).unwrap();
        // Seed both shards and warm the cache.
        let t = client
            .mutate(vec![Update::InsertEdge(va, vb), Update::InsertEdge(vb, va)])
            .unwrap();
        client.wait(&t).unwrap();
        assert_eq!(client.degree(va).unwrap(), 1);
        let before = service.current_view();
        // Build this epoch's unified CSR too, so the post-burst build has
        // a base to refresh incrementally from.
        let before_unified = service.current_unified();
        assert_eq!(before_unified.merged_shards(), 2, "cold build pays all");
        let stats_before = service.stats();

        // A write burst confined to shard 0.
        let t = client.mutate(vec![Update::InsertEdge(va, vb + 2)]).unwrap();
        client.wait(&t).unwrap();
        assert_eq!(client.degree(va).unwrap(), 2);
        let after = service.current_view();
        // Force this epoch's (lazy) unified merge before reading stats.
        let unified = service.current_unified();
        let stats_after = service.stats();

        // Shard 1 was untouched: its materialised snapshot is *shared*
        // with the previous epoch, not re-captured.
        assert!(
            Arc::ptr_eq(&before.shard_view_arc(1), &after.shard_view_arc(1)),
            "untouched shard must reuse its Arc<FrozenView>"
        );
        assert!(
            !Arc::ptr_eq(&before.shard_view_arc(0), &after.shard_view_arc(0)),
            "written shard must be re-captured"
        );
        // And the refresh accounting says one shard was captured for it.
        assert_eq!(
            stats_after.shard_captures - stats_before.shard_captures,
            1,
            "single-shard burst must cost exactly one shard capture"
        );
        // The unified CSR followed the same incremental path: one shard's
        // spans re-merged, the other carried forward.
        assert_eq!(unified.merged_shards(), 1);
        assert!(unified.shard_was_merged(0));
        assert!(!unified.shard_was_merged(1));
        assert_eq!(
            stats_after.unified_shard_merges - stats_before.unified_shard_merges,
            1,
            "single-shard burst must re-merge exactly one shard's spans"
        );
        service.shutdown();
    }

    #[test]
    fn point_read_epochs_never_pay_the_unified_merge() {
        use crate::{Query, QueryResult};
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        for round in 0..3u64 {
            let t = client
                .mutate(vec![Update::InsertEdge(round, round + 1)])
                .unwrap();
            client.wait(&t).unwrap();
            assert_eq!(client.degree(round).unwrap(), 1);
        }
        assert_eq!(
            service.stats().unified_shard_merges,
            0,
            "degree-only traffic must not build the unified CSR"
        );
        // The first analytics query pays the (full, cold) merge once.
        match client.query(Query::ConnectedComponents).unwrap() {
            QueryResult::ConnectedComponents(labels) => assert!(!labels.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            service.stats().unified_shard_merges,
            2,
            "cold merge pays both shards"
        );
        service.shutdown();
    }

    #[test]
    fn deletes_are_visible_through_queries() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        let t = client
            .mutate(vec![
                Update::InsertEdge(5, 6),
                Update::InsertEdge(5, 7),
                Update::DeleteEdge(5, 6),
            ])
            .unwrap();
        client.wait(&t).unwrap();
        assert_eq!(client.neighbors(5).unwrap(), vec![7]);
        assert_eq!(client.degree(5).unwrap(), 1);
        let stats = service.stats();
        assert_eq!(stats.deletes_applied, 1);
        assert_eq!(stats.ops_applied, 3);
    }

    #[test]
    fn hostile_vertex_ids_answer_empty_instead_of_killing_workers() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        let t = client.mutate(vec![Update::InsertEdge(0, 1)]).unwrap();
        client.wait(&t).unwrap();
        for v in [u64::MAX, u64::MAX - 1, 1 << 40] {
            assert_eq!(client.degree(v).unwrap(), 0);
            assert!(client.neighbors(v).unwrap().is_empty());
        }
        // The worker pool survived the hostile queries.
        assert_eq!(client.degree(0).unwrap(), 1);
        service.shutdown();
    }

    #[test]
    fn open_restarts_over_crashed_pools_with_query_parity() {
        let config = ServiceConfig::small_test();
        let service = GraphService::start(config.clone()).unwrap();
        let client = service.client();
        let t = client
            .mutate(vec![
                Update::InsertEdge(0, 1),
                Update::InsertEdge(0, 2),
                Update::InsertEdge(1, 0),
                Update::DeleteEdge(0, 1),
            ])
            .unwrap();
        client.wait(&t).unwrap();
        client.flush().unwrap();
        let pools = service.shard_pools();
        // Stop the workers without a graceful Dgap::shutdown: the
        // NORMAL_SHUTDOWN flag stays clear, so reopening takes the crash
        // path.  (Service pools run with persistence tracking off, so
        // there is no volatile image to discard on top of that.)
        service.shutdown();

        let (reopened, recovery) = GraphService::open(config, pools).unwrap();
        assert_eq!(recovery.num_shards(), 2);
        assert_eq!(recovery.crashed_shards(), 2, "no graceful shutdown ran");
        let client = reopened.client();
        assert_eq!(client.neighbors(0).unwrap(), vec![2]);
        assert_eq!(client.neighbors(1).unwrap(), vec![0]);
        // The recovered service keeps accepting writes.
        let t = client.mutate(vec![Update::InsertEdge(0, 9)]).unwrap();
        client.wait(&t).unwrap();
        assert_eq!(client.neighbors(0).unwrap(), vec![2, 9]);
        reopened.shutdown();
    }

    #[test]
    fn open_rejects_a_pool_count_mismatch() {
        let config = ServiceConfig::small_test();
        let service = GraphService::start(config.clone()).unwrap();
        let mut pools = service.shard_pools();
        pools.pop();
        service.shutdown();
        assert!(GraphService::open(config, pools).is_err());
    }

    #[test]
    fn raw_client_routes_tagged_replies_through_the_worker_pool() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let raw = service.raw_client();
        let (reply, answers) = mpsc::channel();
        raw.submit(
            7,
            Request::Mutate {
                ops: vec![Update::InsertEdge(0, 1)],
                client: None,
            },
            reply.clone(),
        )
        .unwrap();
        let (tag, response) = answers.recv().unwrap();
        assert_eq!(tag, 7);
        let ticket = match response {
            Response::Mutated { ticket, ops } => {
                assert_eq!(ops, 1);
                ticket
            }
            other => panic!("unexpected {other:?}"),
        };
        raw.submit(
            8,
            Request::Wait {
                ticket,
                deadline_ms: None,
            },
            reply.clone(),
        )
        .unwrap();
        assert!(matches!(answers.recv().unwrap(), (8, Response::Waited)));
        raw.submit(9, Request::Query(Query::Degree(0)), reply)
            .unwrap();
        match answers.recv().unwrap() {
            (9, Response::Answer(QueryResult::Degree(d))) => assert_eq!(d, 1),
            other => panic!("unexpected {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn clients_after_shutdown_get_closed() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        assert_eq!(client.degree(0).unwrap(), 0);
        service.shutdown();
        assert_eq!(
            client.mutate(vec![Update::InsertEdge(0, 1)]).unwrap_err(),
            GraphError::Closed
        );
        assert_eq!(client.flush().unwrap_err(), GraphError::Closed);
    }

    #[test]
    fn analytics_queries_run_over_the_service() {
        use crate::{Query, QueryResult};
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        // A 4-cycle, inserted symmetrically.
        let mut ops = Vec::new();
        for &(a, b) in &[(0u64, 1u64), (1, 2), (2, 3), (3, 0)] {
            ops.push(Update::InsertEdge(a, b));
            ops.push(Update::InsertEdge(b, a));
        }
        let t = client.mutate(ops).unwrap();
        client.wait(&t).unwrap();
        match client.query(Query::Bfs { source: 0 }).unwrap() {
            QueryResult::Bfs(parents) => {
                assert_eq!(parents[0], 0, "the source is its own parent");
                assert!(parents[..4].iter().all(|&p| p >= 0), "cycle fully reached");
            }
            other => panic!("unexpected {other:?}"),
        }
        match client.query(Query::ConnectedComponents).unwrap() {
            QueryResult::ConnectedComponents(labels) => {
                assert!(labels[..4].iter().all(|&l| l == labels[0]));
            }
            other => panic!("unexpected {other:?}"),
        }
        match client.query(Query::Pagerank { iterations: 5 }).unwrap() {
            QueryResult::Pagerank(ranks) => {
                // Symmetric cycle: all four members rank equally.
                assert!((ranks[0] - ranks[2]).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn widened_kernel_set_answers_over_the_service() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        // A triangle (0-1-2) with a pendant vertex 3 off vertex 0.
        let mut ops = Vec::new();
        for &(a, b) in &[(0u64, 1u64), (1, 2), (0, 2), (0, 3)] {
            ops.push(Update::InsertEdge(a, b));
            ops.push(Update::InsertEdge(b, a));
        }
        let t = client.mutate(ops).unwrap();
        client.wait(&t).unwrap();

        assert_eq!(client.triangle_count().unwrap(), 1);
        assert_eq!(client.k_core(2).unwrap(), vec![0, 1, 2]);
        let top = client.top_k_degree(1).unwrap();
        assert_eq!(top, vec![(0, 3)], "vertex 0 has degree 3");
        let top_pr = client.top_k_pagerank(2).unwrap();
        assert_eq!(top_pr[0].0, 0, "the hub out-ranks the others");
        assert_eq!(top_pr.len(), 2);
        assert_eq!(client.khop(3, 1).unwrap(), vec![0, 3]);
        assert_eq!(client.khop(3, 2).unwrap(), vec![0, 1, 2, 3]);
        service.shutdown();
    }

    #[test]
    fn repeated_analytics_in_one_epoch_hit_the_maintained_results() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        let t = client
            .mutate(vec![Update::InsertEdge(0, 1), Update::InsertEdge(1, 0)])
            .unwrap();
        client.wait(&t).unwrap();
        // Cold first computes: neither hit nor fallback.
        let _ = client.query(Query::Pagerank { iterations: 20 }).unwrap();
        let _ = client.query(Query::ConnectedComponents).unwrap();
        let snap = service.metrics();
        assert_eq!(snap.counter("analytics_incremental_hits"), Some(0));
        assert_eq!(snap.counter("analytics_incremental_fallbacks"), Some(0));
        // Re-asking in the same epoch answers from the maintained results.
        let _ = client.query(Query::Pagerank { iterations: 20 }).unwrap();
        let _ = client.top_k_pagerank(1).unwrap();
        let _ = client.query(Query::ConnectedComponents).unwrap();
        let snap = service.metrics();
        assert_eq!(snap.counter("analytics_incremental_hits"), Some(3));
        assert_eq!(snap.counter("analytics_incremental_fallbacks"), Some(0));
        service.shutdown();
    }

    #[test]
    fn a_small_burst_advances_the_incremental_counters() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        // A connected base graph, large enough that a 2-vertex burst stays
        // far under the incremental fallback fraction.
        let mut ops = Vec::new();
        for v in 0..63u64 {
            ops.push(Update::InsertEdge(v, v + 1));
            ops.push(Update::InsertEdge(v + 1, v));
        }
        let t = client.mutate(ops).unwrap();
        client.wait(&t).unwrap();
        let full_pr = match client.query(Query::Pagerank { iterations: 20 }).unwrap() {
            QueryResult::Pagerank(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        assert!(full_pr.len() >= 64, "rank vector spans the vertex range");
        let _ = client.query(Query::ConnectedComponents).unwrap();

        // One symmetric insert: the next epoch's analytics go incremental.
        let t = client
            .mutate(vec![Update::InsertEdge(10, 40), Update::InsertEdge(40, 10)])
            .unwrap();
        client.wait(&t).unwrap();
        let incr_pr = match client.query(Query::Pagerank { iterations: 20 }).unwrap() {
            QueryResult::Pagerank(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        let labels = match client.query(Query::ConnectedComponents).unwrap() {
            QueryResult::ConnectedComponents(l) => l,
            other => panic!("unexpected {other:?}"),
        };
        assert!(labels[..64].iter().all(|&l| l == 0), "still one component");
        let snap = service.metrics();
        assert_eq!(snap.counter("analytics_incremental_hits"), Some(2));
        assert_eq!(snap.counter("analytics_incremental_fallbacks"), Some(0));
        let frontier = snap
            .histogram("service_incremental_frontier_size")
            .expect("frontier histogram registered");
        assert!(frontier.count >= 2, "both kernels recorded a frontier");
        // And the incremental answer matches a fresh full recompute.
        let fresh = analytics::pagerank_csr(&*service.current_unified(), 20);
        for (a, b) in incr_pr.iter().zip(&fresh) {
            assert!((a - b).abs() <= 1e-9);
        }
        service.shutdown();
    }

    #[test]
    fn open_quarantines_a_corrupt_shard_and_serves_degraded() {
        let config = ServiceConfig::small_test();
        let service = GraphService::start(config.clone()).unwrap();
        let client = service.client();
        let graph = Arc::clone(service.graph());
        let va = (0..64u64).find(|&v| graph.shard_of(v) == 0).unwrap();
        let vb = (0..64u64).find(|&v| graph.shard_of(v) == 1).unwrap();
        let t = client
            .mutate(vec![
                Update::InsertEdge(va, vb),
                Update::InsertEdge(vb, va),
                Update::InsertEdge(va, vb + 2),
            ])
            .unwrap();
        client.wait(&t).unwrap();
        client.flush().unwrap();
        let pools = service.shard_pools();
        service.shutdown();

        // Flip a bit under shard 1's pool-header CRC seal: its image must
        // fail verification on reopen and the shard be quarantined.
        pools[1].inject_bit_flip(16, 2);

        let (reopened, recovery) = GraphService::open(config, pools).unwrap();
        assert!(recovery.is_degraded());
        assert_eq!(recovery.quarantined_shards(), vec![1]);
        assert_eq!(reopened.degraded_shards(), &[1]);
        assert_eq!(reopened.stats().degraded_shards, 1);
        let (_, reason) = &recovery.quarantine_reasons()[0];
        assert!(
            reason.contains("@ +"),
            "structured offset missing: {reason}"
        );

        let client = reopened.client();
        // Healthy-shard point reads stay exact and unwrapped.
        assert_eq!(client.neighbors(va).unwrap(), vec![vb, vb + 2]);
        // Reads rooted at a quarantined vertex have no trustworthy answer.
        match client.degree(vb) {
            Err(GraphError::Degraded { shards }) => assert_eq!(shards, vec![1]),
            other => panic!("unexpected {other:?}"),
        }
        match client.query(Query::Bfs { source: vb }) {
            Err(GraphError::Degraded { shards }) => assert_eq!(shards, vec![1]),
            other => panic!("unexpected {other:?}"),
        }
        // Whole-graph analytics answer, but always annotated as partial.
        match client.query(Query::TriangleCount).unwrap() {
            QueryResult::Partial {
                degraded_shards,
                result,
            } => {
                assert_eq!(degraded_shards, vec![1]);
                assert!(matches!(*result, QueryResult::TriangleCount(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Mutations routed at the quarantined shard are rejected with the
        // retryable error before touching the pipeline...
        match client.mutate(vec![Update::InsertEdge(vb, va)]) {
            Err(GraphError::Degraded { shards }) => assert_eq!(shards, vec![1]),
            other => panic!("unexpected {other:?}"),
        }
        // ...while healthy-shard writes keep flowing.
        let t = client.mutate(vec![Update::InsertEdge(va, vb + 4)]).unwrap();
        client.wait(&t).unwrap();
        assert_eq!(client.neighbors(va).unwrap(), vec![vb, vb + 2, vb + 4]);
        reopened.shutdown();
    }

    #[test]
    fn background_scrubber_counts_passes_and_bytes() {
        let config = ServiceConfig::small_test().scrub_every(Duration::from_millis(5));
        let service = GraphService::start(config).unwrap();
        let client = service.client();
        let t = client
            .mutate(vec![Update::InsertEdge(1, 2), Update::InsertEdge(2, 3)])
            .unwrap();
        client.wait(&t).unwrap();
        client.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let snap = service.metrics();
            if snap.counter("service_scrub_passes").unwrap_or(0) >= 2 {
                assert!(snap.counter("service_scrub_bytes").unwrap_or(0) > 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "scrubber never completed two passes"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // An undamaged graph scrubs clean: the on-demand pass agrees.
        for report in service.verify() {
            assert!(!report.is_fatal(), "{report:?}");
        }
        service.shutdown();
    }

    #[test]
    fn bounded_wait_times_out_and_stays_retryable_through_the_service() {
        let service = GraphService::start(ServiceConfig::small_test()).unwrap();
        let client = service.client();
        // Queue several fat batches so the last ticket is still in flight
        // when the zero-deadline wait is served.
        let mut last = None;
        for round in 0..4u64 {
            let ops = (0..8000u64)
                .map(|i| Update::InsertEdge(i % 200, (i + round) % 200))
                .collect();
            last = Some(client.mutate(ops).unwrap());
        }
        let ticket = last.unwrap();
        match client.wait_deadline(&ticket, Duration::ZERO) {
            Err(GraphError::Timeout { .. }) => {}
            // Losing the race (everything drained first) is legal but the
            // point of the test is the timeout path, so flag it loudly.
            Ok(()) => panic!("pipeline drained 32k ops before the wait was served"),
            other => panic!("unexpected {other:?}"),
        }
        // The ticket survived the timeout: an unbounded retry completes.
        client.wait(&ticket).unwrap();
        assert!(client.degree(0).unwrap() > 0);
        service.shutdown();
    }
}
