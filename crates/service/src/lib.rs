//! # service — a typed request/response front-end over the sharded engine
//!
//! The `sharded` crate scales *ingest*; this crate turns the result into
//! something a server can expose: a [`GraphService`] that owns a
//! `ShardedGraph<Dgap>` plus its [`sharded::IngestPipeline`], and any
//! number of cloneable [`GraphClient`] handles speaking typed
//! [`Request`] / [`Response`] values over an mpsc request loop served by N
//! worker threads.
//!
//! The design follows the extensibility framing of the related-systems
//! literature: the request/response enums are the **stable contract**, and
//! backends, shard counts and workloads are free to grow underneath it.
//!
//! * **Mutations** ([`Request::Mutate`]) carry `Vec<dgap::Update>` —
//!   inserts *and* deletes — straight into the pipeline and come back with
//!   a [`sharded::Ticket`].  Waiting on the ticket
//!   ([`GraphClient::wait`]) gives that client read-your-writes visibility
//!   without the global flush barrier.
//! * **Queries** ([`Request::Query`]) are served from an **epoch-cached
//!   owned snapshot** (`Arc<sharded::OwnedShardedView>`): the service
//!   re-materialises the snapshot only when the pipeline's write watermark
//!   has advanced, so a read-heavy phase pays for one capture, not one per
//!   query.
//! * **Errors** are per-request and structured ([`Response::Error`]
//!   carrying [`dgap::GraphError`]): one client's failed request never
//!   poisons another's.
//!
//! ## Quick start
//!
//! ```
//! use dgap::Update;
//! use service::{GraphService, Query, QueryResult, ServiceConfig};
//!
//! let service = GraphService::start(ServiceConfig::small_test()).unwrap();
//! let client = service.client();
//!
//! let ticket = client
//!     .mutate(vec![
//!         Update::InsertEdge(0, 1),
//!         Update::InsertEdge(0, 2),
//!         Update::DeleteEdge(0, 1),
//!     ])
//!     .unwrap();
//! client.wait(&ticket).unwrap(); // read-your-writes
//!
//! assert_eq!(client.neighbors(0).unwrap(), vec![2]);
//! match client.query(Query::Degree(0)).unwrap() {
//!     QueryResult::Degree(d) => assert_eq!(d, 1),
//!     other => panic!("unexpected {other:?}"),
//! }
//! service.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod request;
pub mod service;

pub use client::GraphClient;
pub use request::{ClientOp, OpStatus, Query, QueryResult, Request, Response, ServiceStats};
pub use service::{GraphService, RawClient, ServiceConfig};
// Re-exported so a restarting caller can consume `GraphService::open`'s
// recovery report without depending on `sharded` directly.
pub use sharded::ShardedRecovery;
