//! The client handle: typed calls over the service's request channel.

use crate::request::{ClientOp, OpStatus, Query, QueryResult, Request, Response, ServiceStats};
use crate::service::{Envelope, ReplyTo};
use dgap::{GraphError, GraphResult, Update, VertexId};
use obs::MetricsSnapshot;
use sharded::Ticket;
use std::sync::mpsc::{self, Sender};

/// A cloneable handle onto a running [`crate::GraphService`].
///
/// Every call is one request/response round trip: the request is queued on
/// the service's channel together with a private reply channel, a worker
/// serves it, and the typed answer comes back.  Errors are per-request —
/// a rejected mutation on one client never disturbs another client's
/// traffic.  All methods are usable from any thread; clones share the
/// same service.
#[derive(Clone)]
pub struct GraphClient {
    sender: Sender<Envelope>,
}

impl GraphClient {
    pub(crate) fn new(sender: Sender<Envelope>) -> GraphClient {
        GraphClient { sender }
    }

    /// One request/response round trip.  [`GraphError::Closed`] when the
    /// service has shut down.
    pub fn call(&self, request: Request) -> GraphResult<Response> {
        let (reply, answer) = mpsc::channel();
        self.sender
            .send(Envelope {
                request,
                reply: ReplyTo::Direct(reply),
            })
            .map_err(|_| GraphError::Closed)?;
        answer.recv().map_err(|_| GraphError::Closed)
    }

    /// Submit a batch of updates (inserts and deletes).  Returns the
    /// batch's completion [`Ticket`]; pass it to [`GraphClient::wait`] for
    /// read-your-writes visibility.
    pub fn mutate(&self, ops: Vec<Update>) -> GraphResult<Ticket> {
        match self.call(Request::Mutate { ops, client: None })? {
            Response::Mutated { ticket, .. } => Ok(ticket),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Submit a batch under a `(client_id, op_id)` identity for detectable
    /// exactly-once ingest: a duplicate submission of the same pair (a
    /// retry, or a concurrent double-send) is acknowledged with the
    /// original ticket and never applied twice.  Both ids must be
    /// non-zero, op ids must be issued 1, 2, 3, …, and a retry must resend
    /// the identical `ops` vector (see [`ClientOp`]).
    pub fn mutate_as(&self, client_id: u64, op_id: u64, ops: Vec<Update>) -> GraphResult<Ticket> {
        let client = Some(ClientOp { client_id, op_id });
        match self.call(Request::Mutate { ops, client })? {
            Response::Mutated { ticket, .. } => Ok(ticket),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Mutated", &other)),
        }
    }

    /// Did `(client_id, op_id)` durably commit?  The reconnect path: probe
    /// every in-doubt op, retry (identically) the ones that answer
    /// [`OpStatus::NotCommitted`] or [`OpStatus::Unknown`].
    pub fn probe_op(&self, client_id: u64, op_id: u64) -> GraphResult<OpStatus> {
        match self.call(Request::ProbeOp { client_id, op_id })? {
            Response::OpStatus(status) => Ok(status),
            Response::Error(err) => Err(err),
            other => Err(unexpected("OpStatus", &other)),
        }
    }

    /// Block until everything covered by `ticket` is applied.  After this
    /// returns, queries on any client observe those writes — no global
    /// flush required.
    pub fn wait(&self, ticket: &Ticket) -> GraphResult<()> {
        match self.call(Request::Wait {
            ticket: ticket.clone(),
            deadline_ms: None,
        })? {
            Response::Waited => Ok(()),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Waited", &other)),
        }
    }

    /// [`GraphClient::wait`] with an upper bound: if the ticket has not
    /// drained within `deadline` the call returns the structured
    /// [`GraphError::Timeout`] (carrying the elapsed milliseconds) instead
    /// of blocking indefinitely.  The ticket stays valid — retry the wait
    /// later, or give up without losing the submitted work.
    pub fn wait_deadline(&self, ticket: &Ticket, deadline: std::time::Duration) -> GraphResult<()> {
        match self.call(Request::Wait {
            ticket: ticket.clone(),
            deadline_ms: Some(deadline.as_millis() as u64),
        })? {
            Response::Waited => Ok(()),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Waited", &other)),
        }
    }

    /// Global durability barrier: every update submitted so far is applied
    /// and flushed when this returns.
    pub fn flush(&self) -> GraphResult<()> {
        match self.call(Request::Flush)? {
            Response::Flushed => Ok(()),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Run a read-only query against the epoch-cached snapshot.
    pub fn query(&self, query: Query) -> GraphResult<QueryResult> {
        match self.call(Request::Query(query))? {
            Response::Answer(result) => Ok(result),
            Response::Error(err) => Err(err),
            other => Err(unexpected("Answer", &other)),
        }
    }

    /// Convenience: visible out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> GraphResult<usize> {
        match self.query(Query::Degree(v))? {
            QueryResult::Degree(d) => Ok(d),
            other => Err(unexpected_result("Degree", &other)),
        }
    }

    /// Convenience: out-neighbours of `v`.
    pub fn neighbors(&self, v: VertexId) -> GraphResult<Vec<VertexId>> {
        match self.query(Query::Neighbors(v))? {
            QueryResult::Neighbors(n) => Ok(n),
            other => Err(unexpected_result("Neighbors", &other)),
        }
    }

    /// Convenience: service-wide counters.
    pub fn stats(&self) -> GraphResult<ServiceStats> {
        match self.query(Query::Stats)? {
            QueryResult::Stats(s) => Ok(s),
            other => Err(unexpected_result("Stats", &other)),
        }
    }

    /// Convenience: number of unordered triangles in the graph.
    pub fn triangle_count(&self) -> GraphResult<u64> {
        match self.query(Query::TriangleCount)? {
            QueryResult::TriangleCount(t) => Ok(t),
            other => Err(unexpected_result("TriangleCount", &other)),
        }
    }

    /// Convenience: the vertices of the k-core, ascending.
    pub fn k_core(&self, k: u64) -> GraphResult<Vec<VertexId>> {
        match self.query(Query::KCore { k })? {
            QueryResult::KCore(core) => Ok(core),
            other => Err(unexpected_result("KCore", &other)),
        }
    }

    /// Convenience: the `k` highest-degree vertices, descending.
    pub fn top_k_degree(&self, k: u64) -> GraphResult<Vec<(VertexId, u64)>> {
        match self.query(Query::TopKDegree { k })? {
            QueryResult::TopKDegree(top) => Ok(top),
            other => Err(unexpected_result("TopKDegree", &other)),
        }
    }

    /// Convenience: the `k` highest-PageRank vertices, descending
    /// (answered from the service's maintained rank vector).
    pub fn top_k_pagerank(&self, k: u64) -> GraphResult<Vec<(VertexId, f64)>> {
        match self.query(Query::TopKPagerank { k })? {
            QueryResult::TopKPagerank(top) => Ok(top),
            other => Err(unexpected_result("TopKPagerank", &other)),
        }
    }

    /// Convenience: every vertex within `depth` hops of `source`
    /// (including the source), ascending.
    pub fn khop(&self, source: VertexId, depth: u64) -> GraphResult<Vec<VertexId>> {
        match self.query(Query::KHop { source, depth })? {
            QueryResult::KHop(ball) => Ok(ball),
            other => Err(unexpected_result("KHop", &other)),
        }
    }

    /// Convenience: the full telemetry snapshot — every counter, gauge and
    /// latency histogram of the service, its pipeline, the process-global
    /// registry and the work-stealing pool.  Unlike the other queries this
    /// never touches the epoch cache.
    pub fn metrics(&self) -> GraphResult<MetricsSnapshot> {
        match self.query(Query::Metrics)? {
            QueryResult::Metrics(snapshot) => Ok(*snapshot),
            other => Err(unexpected_result("Metrics", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> GraphError {
    GraphError::Other(format!(
        "service protocol error: wanted {wanted}, got {got:?}"
    ))
}

fn unexpected_result(wanted: &str, got: &QueryResult) -> GraphError {
    GraphError::Other(format!(
        "service protocol error: wanted {wanted}, got {got:?}"
    ))
}
