//! The wire types of the service: requests, queries, responses.
//!
//! These enums are the stable contract between clients and the service
//! loop.  They are plain values (no lifetimes, no handles), so they can be
//! queued, logged, or — in a future PR — serialised onto a network
//! transport without touching the engine underneath.

use dgap::{GraphError, Update, VertexId};
use obs::MetricsSnapshot;
use sharded::Ticket;

/// Client identity attached to a mutation for detectable exactly-once
/// ingest: the service deduplicates repeated `(client_id, op_id)` pairs and
/// records the committed watermark durably in every shard pool.
///
/// Both ids must be non-zero (0 is the durable tables' free-slot sentinel).
/// A client must number its operations 1, 2, 3, … and, when it retries an
/// operation after an error or a reconnect, resend the **identical** update
/// vector under the same op id — that contract is what lets an interrupted
/// batch resume from its durable cursor without applying anything twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOp {
    /// The submitting client's stable identity.
    pub client_id: u64,
    /// The client's sequence number for this operation.
    pub op_id: u64,
}

/// Commit status of a `(client_id, op_id)` pair, answered to
/// [`Request::ProbeOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// The operation is durably applied on every shard: do **not** retry.
    Committed,
    /// The client is known but this operation has not committed (lost in a
    /// crash, still in flight, or never submitted): safe to retry.
    NotCommitted,
    /// No shard has ever heard of this client — a fresh service (or wiped
    /// pools).  Retrying is safe, but the client should treat this as "all
    /// my history is gone", not just this operation.
    Unknown,
}

/// A request accepted by [`crate::GraphService`].
#[derive(Debug, Clone)]
pub enum Request {
    /// Apply a batch of typed updates (inserts and deletes) through the
    /// ingest pipeline.  Answered with [`Response::Mutated`] carrying the
    /// batch's completion [`Ticket`].
    ///
    /// With `client: Some(_)` the batch takes the durable exactly-once
    /// path: a duplicate `(client_id, op_id)` is acknowledged with the
    /// original ticket instead of being applied again.
    Mutate {
        /// The typed updates to apply.
        ops: Vec<Update>,
        /// Optional exactly-once identity ([`ClientOp`]).
        client: Option<ClientOp>,
    },
    /// Block until the ticket's updates are applied — the submitting
    /// client's read-your-writes point.  Answered with [`Response::Waited`].
    ///
    /// `deadline_ms = Some(d)` bounds the block: if the ticket has not
    /// drained within `d` milliseconds the service answers
    /// [`dgap::GraphError::Timeout`] instead of holding the worker (and
    /// the caller) indefinitely.  The ticket stays valid — a timeout is a
    /// retryable signal, not a failure of the submitted work.
    Wait {
        /// The completion handle to block on.
        ticket: Ticket,
        /// Optional upper bound on the wait, in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Global durability barrier: quiesce the pipeline and flush every
    /// backend.  Answered with [`Response::Flushed`].
    Flush,
    /// Did `(client_id, op_id)` commit?  Answered with
    /// [`Response::OpStatus`]; the reconnect path of a durable client uses
    /// this to resolve every in-doubt batch before retrying.
    ProbeOp {
        /// The client whose operation is probed.
        client_id: u64,
        /// The operation id in question.
        op_id: u64,
    },
    /// A read-only query served from the epoch-cached snapshot.  Answered
    /// with [`Response::Answer`].
    Query(Query),
}

/// Read-only queries, all served from one consistent owned snapshot.
///
/// Degrees and neighbour lists are **resolved** (tombstones applied), so
/// after deletions the answers match the in-memory reference semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Visible out-degree of a vertex.
    Degree(VertexId),
    /// Out-neighbours of a vertex, in insertion order.
    Neighbors(VertexId),
    /// Service-wide counters (graph size, pipeline progress, cache churn).
    Stats,
    /// The full telemetry plane: every registered counter, gauge and
    /// latency histogram (service + pipeline + process-global + pool) as a
    /// structured [`MetricsSnapshot`].  Unlike every other query this does
    /// **not** touch the epoch cache — reading metrics never perturbs the
    /// hit/miss counters it reports.
    Metrics,
    /// PageRank over the snapshot (damping 0.85).
    Pagerank {
        /// Number of pull iterations.
        iterations: usize,
    },
    /// BFS parent array from `source` (-1 for unreachable vertices; the
    /// source is its own parent).
    ///
    /// The reached set and every hop distance are deterministic, but the
    /// traversal runs the parallel CSR kernel: when a vertex is reachable
    /// from several same-level vertices, *which* of them becomes the
    /// parent may differ between otherwise identical requests.  Clients
    /// comparing results across runs should compare distances (or validate
    /// parents), not the raw parent array.
    Bfs {
        /// Traversal source vertex.
        source: VertexId,
    },
    /// Connected-component labels per vertex.
    ConnectedComponents,
    /// Number of unordered triangles in the graph.
    TriangleCount,
    /// The vertices of the k-core (every member has degree ≥ k within the
    /// core), ascending.
    KCore {
        /// Minimum within-core degree.
        k: u64,
    },
    /// The `k` highest-degree vertices, descending by degree (ties towards
    /// the lowest id).
    TopKDegree {
        /// How many entries to return.
        k: u64,
    },
    /// The `k` highest-PageRank vertices (default iteration count,
    /// answered from the maintained rank vector), descending by rank (ties
    /// towards the lowest id).
    TopKPagerank {
        /// How many entries to return.
        k: u64,
    },
    /// Every vertex within `depth` hops of `source` (including the source
    /// itself), ascending.
    KHop {
        /// Centre of the neighbourhood.
        source: VertexId,
        /// Maximum hop distance.
        depth: u64,
    },
}

/// The service's answer to one [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// The mutation batch was enqueued; `ticket` completes when it is
    /// applied, `ops` is the number of operations accepted.
    Mutated {
        /// Completion handle for the enqueued batch.
        ticket: Ticket,
        /// Number of operations in the batch.
        ops: usize,
    },
    /// The awaited ticket is fully applied.
    Waited,
    /// The durability barrier completed.
    Flushed,
    /// Answer to [`Request::ProbeOp`].
    OpStatus(OpStatus),
    /// The query result.
    Answer(QueryResult),
    /// The request failed; the error is scoped to this request only.
    Error(GraphError),
}

/// Results of the read-only [`Query`] variants.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Answer to [`Query::Degree`].
    Degree(usize),
    /// Answer to [`Query::Neighbors`].
    Neighbors(Vec<VertexId>),
    /// Answer to [`Query::Stats`].
    Stats(ServiceStats),
    /// Answer to [`Query::Metrics`]: the merged telemetry snapshot
    /// (renderable with [`MetricsSnapshot::render_prometheus`]).
    Metrics(Box<MetricsSnapshot>),
    /// Answer to [`Query::Pagerank`]: one rank per vertex.
    Pagerank(Vec<f64>),
    /// Answer to [`Query::Bfs`]: one parent per vertex (-1 = unreachable).
    Bfs(Vec<i64>),
    /// Answer to [`Query::ConnectedComponents`]: one label per vertex.
    ConnectedComponents(Vec<u64>),
    /// Answer to [`Query::TriangleCount`].
    TriangleCount(u64),
    /// Answer to [`Query::KCore`]: the core's members, ascending.
    KCore(Vec<VertexId>),
    /// Answer to [`Query::TopKDegree`]: `(vertex, degree)` pairs,
    /// descending by degree.
    TopKDegree(Vec<(VertexId, u64)>),
    /// Answer to [`Query::TopKPagerank`]: `(vertex, rank)` pairs,
    /// descending by rank.
    TopKPagerank(Vec<(VertexId, f64)>),
    /// Answer to [`Query::KHop`]: the neighbourhood's members, ascending.
    KHop(Vec<VertexId>),
    /// A result computed while the service is **degraded**: the shards in
    /// `degraded_shards` were quarantined at startup (persistent image
    /// failed integrity verification), so `result` covers only the
    /// surviving shards.  Point reads owned by a healthy shard are still
    /// exact and come back unwrapped; whole-graph analytics always carry
    /// this annotation while any shard is out — a partial answer must
    /// never be mistakable for a complete one.
    Partial {
        /// The quarantined shards the result is missing, ascending.
        degraded_shards: Vec<usize>,
        /// The surviving-shard result.
        result: Box<QueryResult>,
    },
}

/// Service-wide counters returned by [`Query::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Vertices in the served snapshot.
    pub num_vertices: usize,
    /// Visible (tombstone-resolved) edges in the served snapshot.
    pub num_edges: usize,
    /// Number of shards behind the service.
    pub num_shards: usize,
    /// Operations submitted into the pipeline since startup.
    pub ops_submitted: u64,
    /// Operations applied to backends since startup.
    pub ops_applied: u64,
    /// Edge deletions among the applied operations.
    pub deletes_applied: u64,
    /// The write watermark (drained batches) the served snapshot was
    /// captured at.
    pub watermark: u64,
    /// Times the epoch cache refreshed its snapshot (incrementally or in
    /// full).
    pub snapshot_refreshes: u64,
    /// Individual shard snapshots materialised across all refreshes.  With
    /// the incremental refresh this grows by the number of *changed* shards
    /// per epoch — `shard_captures / snapshot_refreshes` near 1.0 means
    /// single-shard write bursts are paying for one shard, not all of them.
    pub shard_captures: u64,
    /// Total time spent refreshing the snapshot cache, in nanoseconds
    /// (divide by `snapshot_refreshes` for the mean refresh latency).
    pub refresh_nanos: u64,
    /// Per-shard span merges the unified-CSR cache paid across all of its
    /// (lazy) builds — the merge runs on the first analytics query of an
    /// epoch, never for point-read-only epochs.  The incremental re-merge
    /// only gathers shards whose snapshot was re-captured since the last
    /// build, so a low ratio of `unified_shard_merges` to builds means
    /// single-shard write bursts re-merge one shard's spans, not all of
    /// them.
    pub unified_shard_merges: u64,
    /// Total time spent merging/refreshing the unified CSR the analytics
    /// queries run over, in nanoseconds (the cost of the zero-dispatch
    /// plane, paid at most once per epoch instead of per query).
    pub unify_nanos: u64,
    /// Requests the worker pool has answered.
    pub requests_served: u64,
    /// Shards quarantined at startup (integrity verification failed).
    /// Non-zero means the service is running degraded: whole-graph
    /// analytics answer [`QueryResult::Partial`] and mutations touching a
    /// quarantined shard are rejected with a retryable error.
    pub degraded_shards: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_types_are_plain_clonable_values() {
        let req = Request::Mutate {
            ops: vec![Update::InsertEdge(1, 2), Update::DeleteEdge(1, 2)],
            client: Some(ClientOp {
                client_id: 7,
                op_id: 1,
            }),
        };
        let _cloned = req.clone();
        assert!(matches!(
            Response::OpStatus(OpStatus::Committed),
            Response::OpStatus(OpStatus::Committed)
        ));
        let resp = Response::Answer(QueryResult::Neighbors(vec![2, 3]));
        match resp.clone() {
            Response::Answer(QueryResult::Neighbors(n)) => assert_eq!(n, vec![2, 3]),
            other => panic!("unexpected {other:?}"),
        }
        let err = Response::Error(GraphError::Closed);
        assert!(matches!(err, Response::Error(GraphError::Closed)));
    }
}
