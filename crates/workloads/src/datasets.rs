//! Presets mirroring the paper's Table 2 datasets.
//!
//! Each preset records the real dataset's vertex count, edge count and
//! domain, and knows how to produce a *scaled* synthetic stand-in: an R-MAT
//! graph with `|V| / scale` vertices and `|E| / scale` edges (so the average
//! degree — the property that drives section density and edge-log pressure —
//! is preserved).  `EXPERIMENTS.md` records the scale factor used for each
//! reported number.

use crate::generator::{EdgeList, GeneratorConfig, GraphKind};

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables and figures.
    pub name: &'static str,
    /// Application domain (social, citation, biology...).
    pub domain: &'static str,
    /// Real vertex count.
    pub vertices: u64,
    /// Real edge count.
    pub edges: u64,
}

impl DatasetSpec {
    /// Average degree `|E| / |V|` of the real dataset.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Vertex count after dividing by `scale` (at least 64).
    pub fn scaled_vertices(&self, scale: u64) -> usize {
        ((self.vertices / scale.max(1)).max(64)) as usize
    }

    /// Edge count after dividing by `scale` (at least 256).
    pub fn scaled_edges(&self, scale: u64) -> usize {
        ((self.edges / scale.max(1)).max(256)) as usize
    }

    /// Generate the scaled synthetic stand-in (R-MAT, shuffled insertion
    /// order, deterministic seed derived from the dataset name).
    pub fn generate_scaled(&self, scale: u64) -> EdgeList {
        let seed = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        GeneratorConfig {
            num_vertices: self.scaled_vertices(scale),
            num_edges: self.scaled_edges(scale),
            kind: GraphKind::RMat,
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    }
}

/// Orkut social network (|V| = 3.07 M, |E| = 234 M, |E|/|V| = 76).
pub const ORKUT: DatasetSpec = DatasetSpec {
    name: "Orkut",
    domain: "social",
    vertices: 3_072_626,
    edges: 234_370_166,
};

/// LiveJournal social network (|V| = 4.85 M, |E| = 85.7 M).
pub const LIVEJOURNAL: DatasetSpec = DatasetSpec {
    name: "LiveJournal",
    domain: "social",
    vertices: 4_847_570,
    edges: 85_702_474,
};

/// US patent citation graph (|V| = 6.01 M, |E| = 33.0 M).
pub const CIT_PATENTS: DatasetSpec = DatasetSpec {
    name: "CitPatents",
    domain: "citation",
    vertices: 6_009_554,
    edges: 33_037_894,
};

/// Twitter follower graph (|V| = 61.6 M, |E| = 2.41 B).
pub const TWITTER: DatasetSpec = DatasetSpec {
    name: "Twitter",
    domain: "social",
    vertices: 61_578_414,
    edges: 2_405_026_390,
};

/// Friendster social network (|V| = 125 M, |E| = 3.61 B).
pub const FRIENDSTER: DatasetSpec = DatasetSpec {
    name: "Friendster",
    domain: "social",
    vertices: 124_836_179,
    edges: 3_612_134_270,
};

/// Protein-interaction graph (|V| = 8.75 M, |E| = 1.31 B, |E|/|V| = 149).
pub const PROTEIN: DatasetSpec = DatasetSpec {
    name: "Protein",
    domain: "biology",
    vertices: 8_745_543,
    edges: 1_309_240_502,
};

/// All six datasets in the order the paper's tables list them.
pub const ALL_DATASETS: [DatasetSpec; 6] = [
    ORKUT,
    LIVEJOURNAL,
    CIT_PATENTS,
    TWITTER,
    FRIENDSTER,
    PROTEIN,
];

/// The three "small" datasets used for the ablation study (Table 5) and the
/// edge-log sweep (Fig. 9).
pub const SMALL_DATASETS: [DatasetSpec; 3] = [ORKUT, LIVEJOURNAL, CIT_PATENTS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_properties_match_the_paper() {
        assert_eq!(ALL_DATASETS.len(), 6);
        // |E|/|V| ratios from Table 2 (rounded as printed there).
        assert_eq!(ORKUT.avg_degree().round() as u64, 76);
        assert_eq!(LIVEJOURNAL.avg_degree().round() as u64, 18);
        assert_eq!(CIT_PATENTS.avg_degree().round() as u64, 5); // paper prints 6 (truncation)
        assert_eq!(TWITTER.avg_degree().round() as u64, 39);
        assert_eq!(FRIENDSTER.avg_degree().round() as u64, 29);
        assert_eq!(PROTEIN.avg_degree().round() as u64, 150); // paper prints 149
    }

    #[test]
    fn scaling_preserves_average_degree() {
        for spec in ALL_DATASETS {
            let scale = 4096;
            let v = spec.scaled_vertices(scale) as f64;
            let e = spec.scaled_edges(scale) as f64;
            let scaled_ratio = e / v;
            // Small datasets hit the floor values, so allow slack.
            assert!(
                scaled_ratio >= spec.avg_degree() * 0.5 || e <= 512.0,
                "{}: scaled ratio {scaled_ratio} vs real {}",
                spec.name,
                spec.avg_degree()
            );
        }
    }

    #[test]
    fn generate_scaled_is_deterministic_and_sized() {
        let a = ORKUT.generate_scaled(16_384);
        let b = ORKUT.generate_scaled(16_384);
        assert_eq!(a, b);
        assert_eq!(a.num_vertices, ORKUT.scaled_vertices(16_384));
        assert_eq!(a.num_edges(), ORKUT.scaled_edges(16_384));
        // Different datasets use different seeds.
        let c = LIVEJOURNAL.generate_scaled(16_384);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn floors_prevent_degenerate_graphs() {
        let tiny = CIT_PATENTS.scaled_vertices(u64::MAX);
        assert!(tiny >= 64);
        assert!(CIT_PATENTS.scaled_edges(u64::MAX) >= 256);
    }
}
