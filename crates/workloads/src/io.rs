//! Edge-list file IO.
//!
//! The SNAP datasets the paper uses are plain-text edge lists ("src dst" per
//! line, `#` comments).  When a local copy is available, benchmarks can load
//! it with [`load_edge_list`] and run against the real graph instead of the
//! synthetic stand-in.  [`save_edge_list`] writes the same format, which is
//! handy for freezing a generated workload so that different systems see the
//! identical insertion stream across processes.

use crate::generator::EdgeList;
use crate::Edge;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Load a SNAP-style edge list: one `src dst` pair per line (whitespace
/// separated), lines starting with `#` or `%` ignored.
pub fn load_edge_list(path: &Path) -> std::io::Result<EdgeList> {
    let f = std::fs::File::open(path)?;
    let reader = BufReader::new(f);
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_id = 0u64;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(src), Ok(dst)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed edge line: {line:?}"),
            ));
        };
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst));
    }
    let num_vertices = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok(EdgeList::from_edges(num_vertices, edges))
}

/// Write an edge list in the same plain-text format.
pub fn save_edge_list(path: &Path, list: &EdgeList) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "# vertices: {}", list.num_vertices)?;
    writeln!(w, "# edges: {}", list.edges.len())?;
    for &(s, d) in &list.edges {
        writeln!(w, "{s} {d}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, GraphKind};

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dgap-workloads-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_edges() {
        let g = GeneratorConfig::new(64, 500, GraphKind::Uniform, 1).generate();
        let path = temp_path("roundtrip.el");
        save_edge_list(&path, &g).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.edges, g.edges);
        assert!(loaded.num_vertices <= g.num_vertices);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let path = temp_path("comments.el");
        std::fs::write(&path, "# header\n\n% other comment\n0 1\n2 3\n").unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.edges, vec![(0, 1), (2, 3)]);
        assert_eq!(loaded.num_vertices, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_an_error() {
        let path = temp_path("bad.el");
        std::fs::write(&path, "0 1\nnot numbers\n").unwrap();
        assert!(load_edge_list(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_an_empty_graph() {
        let path = temp_path("empty.el");
        std::fs::write(&path, "# nothing\n").unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.num_vertices, 0);
        assert!(loaded.edges.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_edge_list(Path::new("/nonexistent/definitely/missing.el")).is_err());
    }
}
