//! # workloads — graph generators, dataset presets and edge-list IO
//!
//! The paper evaluates on six SNAP graphs (Table 2: Orkut, LiveJournal,
//! cit-Patents, Twitter, Friendster, Protein).  Those raw datasets range
//! from hundreds of megabytes to tens of gigabytes and cannot be shipped
//! with this repository, so the benchmark harness uses *scaled synthetic
//! stand-ins*: R-MAT graphs parameterised to match each dataset's vertex
//! count, average degree and skew, shrunk by a configurable scale factor
//! (see `EXPERIMENTS.md`).  The qualitative behaviour the evaluation depends
//! on — skewed degree distributions and randomly shuffled insertion order —
//! is preserved.
//!
//! When the real SNAP edge lists are available locally they can be loaded
//! with [`io::load_edge_list`] and used instead; every harness accepts
//! either source.

#![warn(missing_docs)]

pub mod datasets;
pub mod generator;
pub mod io;

pub use datasets::{DatasetSpec, ALL_DATASETS};
pub use generator::{EdgeList, GeneratorConfig, GraphKind};

/// A directed edge: `(source, destination)`.
pub type Edge = (u64, u64);

/// Iterate an insertion stream in batches of at most `batch_size` edges —
/// the shape batched ingest front-ends (e.g. the `sharded` crate's
/// pipeline) consume.  [`EdgeList::batches`] is the method form.
pub fn batches(edges: &[Edge], batch_size: usize) -> std::slice::Chunks<'_, Edge> {
    assert!(batch_size > 0, "batch_size must be at least 1");
    edges.chunks(batch_size)
}

/// Split an insertion stream into the 10 % warm-up prefix and the measured
/// remainder, following the paper's YCSB-style warm-up protocol ("insert the
/// first 10 % of the graph and then start to benchmark").
pub fn warmup_split(edges: &[Edge], warmup_fraction: f64) -> (&[Edge], &[Edge]) {
    let cut = ((edges.len() as f64) * warmup_fraction).round() as usize;
    let cut = cut.min(edges.len());
    edges.split_at(cut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_split_follows_fraction() {
        let edges: Vec<Edge> = (0..100).map(|i| (i, i + 1)).collect();
        let (warm, rest) = warmup_split(&edges, 0.1);
        assert_eq!(warm.len(), 10);
        assert_eq!(rest.len(), 90);
        assert_eq!(warm[9], (9, 10));
        assert_eq!(rest[0], (10, 11));
    }

    #[test]
    fn warmup_split_handles_edges_cases() {
        let edges: Vec<Edge> = (0..5).map(|i| (i, i)).collect();
        let (w, r) = warmup_split(&edges, 0.0);
        assert!(w.is_empty());
        assert_eq!(r.len(), 5);
        let (w, r) = warmup_split(&edges, 1.0);
        assert_eq!(w.len(), 5);
        assert!(r.is_empty());
        let (w, _) = warmup_split(&[], 0.1);
        assert!(w.is_empty());
    }
}
