//! Synthetic graph generators.
//!
//! Two generators are provided:
//!
//! * **R-MAT** (recursive matrix): the standard way of producing graphs with
//!   power-law degree distributions.  The default parameters
//!   `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` are the Graph500 values and
//!   yield the heavy skew the paper's VCSR-based design reacts to.
//! * **Uniform** (Erdős–Rényi style): every edge endpoint drawn uniformly,
//!   used to contrast skew-sensitive behaviour in tests and ablations.
//!
//! Generation is deterministic given the seed, so every benchmark run sees
//! the same graph and the same (shuffled) insertion order.

use crate::Edge;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which degree structure to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// R-MAT power-law graph (skewed, like the paper's social graphs).
    RMat,
    /// Uniform random graph.
    Uniform,
}

/// Parameters of one synthetic graph.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of vertices (rounded up to a power of two internally for
    /// R-MAT recursion; emitted ids stay below this value).
    pub num_vertices: usize,
    /// Number of edges to generate.
    pub num_edges: usize,
    /// Degree structure.
    pub kind: GraphKind,
    /// R-MAT partition probabilities; ignored for uniform graphs.
    pub rmat: (f64, f64, f64, f64),
    /// Seed for the deterministic RNG.
    pub seed: u64,
    /// Whether to randomly shuffle the emitted edge order (the paper
    /// shuffles all edges before insertion).
    pub shuffle: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_vertices: 1024,
            num_edges: 8192,
            kind: GraphKind::RMat,
            rmat: (0.57, 0.19, 0.19, 0.05),
            seed: 42,
            shuffle: true,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor.
    pub fn new(num_vertices: usize, num_edges: usize, kind: GraphKind, seed: u64) -> Self {
        GeneratorConfig {
            num_vertices,
            num_edges,
            kind,
            seed,
            ..GeneratorConfig::default()
        }
    }

    /// Generate the edge list described by this configuration.
    pub fn generate(&self) -> EdgeList {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = self.num_vertices.max(2);
        let mut edges: Vec<Edge> = Vec::with_capacity(self.num_edges);
        match self.kind {
            GraphKind::Uniform => {
                for _ in 0..self.num_edges {
                    let src = rng.gen_range(0..n as u64);
                    let dst = rng.gen_range(0..n as u64);
                    edges.push((src, dst));
                }
            }
            GraphKind::RMat => {
                let levels = (n as f64).log2().ceil() as u32;
                let (a, b, c, _d) = self.rmat;
                for _ in 0..self.num_edges {
                    let (mut src, mut dst) = (0u64, 0u64);
                    for _ in 0..levels {
                        src <<= 1;
                        dst <<= 1;
                        let r: f64 = rng.gen();
                        if r < a {
                            // top-left quadrant
                        } else if r < a + b {
                            dst |= 1;
                        } else if r < a + b + c {
                            src |= 1;
                        } else {
                            src |= 1;
                            dst |= 1;
                        }
                    }
                    edges.push((src % n as u64, dst % n as u64));
                }
            }
        }
        if self.shuffle {
            edges.shuffle(&mut rng);
        }
        EdgeList {
            num_vertices: self.num_vertices,
            edges,
        }
    }
}

/// A generated (or loaded) graph: vertex count plus the insertion-ordered
/// edge stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (max id + 1 for loaded graphs).
    pub num_vertices: usize,
    /// The edges, in the order they should be inserted.
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// Build directly from parts (used by the file loader and tests).
    pub fn from_edges(num_vertices: usize, edges: Vec<Edge>) -> Self {
        EdgeList {
            num_vertices,
            edges,
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Average degree `|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }

    /// Out-degree histogram (index = vertex id).
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_vertices];
        for &(s, _) in &self.edges {
            if (s as usize) < d.len() {
                d[s as usize] += 1;
            } else {
                d.resize(s as usize + 1, 0);
                d[s as usize] += 1;
            }
        }
        d
    }

    /// Maximum out-degree (a quick skew indicator).
    pub fn max_degree(&self) -> usize {
        self.out_degrees().into_iter().max().unwrap_or(0)
    }

    /// Iterate the insertion stream in batches of at most `batch_size`
    /// edges — the shape batched ingest front-ends (e.g. the `sharded`
    /// crate's pipeline) consume.  The final batch may be shorter.
    pub fn batches(&self, batch_size: usize) -> std::slice::Chunks<'_, Edge> {
        crate::batches(&self.edges, batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::new(256, 2048, GraphKind::RMat, 7);
        assert_eq!(cfg.generate(), cfg.generate());
        let other_seed = GeneratorConfig::new(256, 2048, GraphKind::RMat, 8).generate();
        assert_ne!(cfg.generate(), other_seed);
    }

    #[test]
    fn counts_and_ranges_are_respected() {
        for kind in [GraphKind::RMat, GraphKind::Uniform] {
            let cfg = GeneratorConfig::new(100, 1000, kind, 3);
            let g = cfg.generate();
            assert_eq!(g.num_edges(), 1000);
            assert_eq!(g.num_vertices, 100);
            assert!(g.edges.iter().all(|&(s, d)| s < 100 && d < 100));
            assert!((g.avg_degree() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rmat_is_more_skewed_than_uniform() {
        let rmat = GeneratorConfig::new(1024, 20_000, GraphKind::RMat, 11).generate();
        let unif = GeneratorConfig::new(1024, 20_000, GraphKind::Uniform, 11).generate();
        assert!(
            rmat.max_degree() > 2 * unif.max_degree(),
            "R-MAT max degree {} should dwarf uniform {}",
            rmat.max_degree(),
            unif.max_degree()
        );
    }

    #[test]
    fn shuffle_changes_order_but_not_multiset() {
        let mut cfg = GeneratorConfig::new(64, 512, GraphKind::Uniform, 5);
        cfg.shuffle = false;
        let ordered = cfg.generate();
        cfg.shuffle = true;
        let shuffled = cfg.generate();
        assert_ne!(ordered.edges, shuffled.edges);
        let mut a = ordered.edges.clone();
        let mut b = shuffled.edges.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_helpers() {
        let el = EdgeList::from_edges(4, vec![(0, 1), (0, 2), (1, 0), (3, 3), (3, 1), (3, 0)]);
        assert_eq!(el.out_degrees(), vec![2, 1, 0, 3]);
        assert_eq!(el.max_degree(), 3);
    }

    #[test]
    fn batches_cover_the_stream_in_order() {
        let el = EdgeList::from_edges(8, (0..10u64).map(|i| (i % 8, (i + 1) % 8)).collect());
        let batches: Vec<&[Edge]> = el.batches(4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let rejoined: Vec<Edge> = batches.concat();
        assert_eq!(rejoined, el.edges);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_size_rejected() {
        let el = EdgeList::from_edges(2, vec![(0, 1)]);
        let _ = el.batches(0);
    }
}
