//! Offline stand-in for the `criterion` API subset the micro-benchmarks in
//! `crates/bench/benches/` use.
//!
//! The workspace must build without registry access, so instead of the real
//! statistics engine this shim runs each registered benchmark a small fixed
//! number of iterations and prints the mean wall-clock time per iteration.
//! It keeps the familiar surface — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — so the bench
//! sources compile unchanged and still produce comparable relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark (after one warm-up iteration).
const MEASURE_ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&id.to_string(), f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput (recorded for display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim does one warm-up iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher); // warm-up
    bencher.elapsed = Duration::ZERO;
    bencher.iters = 0;
    for _ in 0..MEASURE_ITERS {
        f(&mut bencher);
    }
    let mean = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters
    };
    println!("bench {label:<60} {mean:>12.3?}/iter");
}

/// Passed to every benchmark closure; times the inner routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }

    /// Time one execution of `routine`, dropping its output outside the
    /// timed region.
    pub fn iter_with_large_drop<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier from a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration (recorded for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (edges, operations, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // one warm-up call + MEASURE_ITERS measured calls
        assert_eq!(runs, 1 + MEASURE_ITERS);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("insert", 8).to_string(), "insert/8");
        assert_eq!(BenchmarkId::from_parameter("dgap").to_string(), "dgap");
    }
}
