//! Offline stand-in for the small `parking_lot` API subset this workspace
//! uses (`Mutex`, `RwLock` and their guards).
//!
//! The workspace must build without registry access, so instead of the real
//! `parking_lot` crate this shim wraps the `std::sync` primitives and strips
//! lock poisoning (parking_lot locks are not poisoned: a panicking holder
//! simply releases the lock).  The subset is intentionally tiny — only what
//! the `pmem`, `dgap` and `baselines` crates call — but signature-compatible,
//! so swapping the real crate back in is a one-line manifest change.

use std::sync::PoisonError;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Re-export of the guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Re-export of the guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` calling convention:
/// [`Mutex::lock`] returns the guard directly instead of a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably access the protected value through an exclusive reference
    /// (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the `parking_lot` calling convention:
/// [`RwLock::read`] / [`RwLock::write`] return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably access the protected value through an exclusive reference.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert!(l.try_write().is_some());
        let read_guard = l.read();
        assert!(l.try_write().is_none(), "readers block writers");
        drop(read_guard);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
