//! Offline stand-in for the small `rand` API subset this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The workspace must build without registry access; the `workloads`
//! generators only need a deterministic, seedable, reasonably uniform source
//! of randomness, which the companion `rand_chacha` shim provides.  Sampling
//! here uses plain modulo reduction, whose bias is negligible for the range
//! sizes involved (graph vertex counts ≪ 2^64).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of sampling from rand's `Standard` distribution).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let width = (hi - lo) as u64;
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_uniform_int!(u64, u32, u16, u8, usize);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform over its standard distribution).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open integer range.
    fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod seq {
    //! Sequence-related random operations (`SliceRandom`).

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i + 1));
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = Lcg(9);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Lcg(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
