//! Offline stand-in for `rand_chacha`, providing the [`ChaCha8Rng`] name the
//! `workloads` crate seeds its deterministic generators with.
//!
//! The workspace must build without registry access.  Nothing here depends
//! on the actual ChaCha stream-cipher output — only on determinism, seeding
//! via `seed_from_u64` and good statistical uniformity — so this shim backs
//! the familiar name with xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, the standard seeding recipe for that family.  Streams differ
//! from the real `rand_chacha` crate; all in-repo consumers only compare
//! runs against other runs of this same workspace.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG under the `ChaCha8Rng` name (xoshiro256++
/// inside; see the crate docs).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn roughly_uniform_f64() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
