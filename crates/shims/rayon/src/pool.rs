//! The persistent work-stealing thread pool behind every parallel
//! combinator in this shim.
//!
//! Layout follows the classic work-stealing design (and real rayon's
//! architecture at miniature scale):
//!
//! * one **global registry** (`Registry::global`), created lazily on the
//!   first parallel call and kept alive for the life of the process — no
//!   per-call thread spawning;
//! * one worker thread per core, each owning a bounded **Chase-Lev-style
//!   deque**: the owner pushes and pops at the bottom (LIFO, cache-warm),
//!   thieves steal from the top (FIFO, oldest-first — the biggest pending
//!   subtree under recursive splitting);
//! * a mutex-protected **global injector** queue through which threads
//!   outside the pool submit work (and into which a full worker deque
//!   overflows);
//! * [`join`] and [`scope`] primitives with the usual latch discipline:
//!   a blocked owner *helps* (claims its own pending job or steals other
//!   work) instead of sleeping, so nested parallelism cannot deadlock on a
//!   bounded pool.
//!
//! The deque stores `JobRef`s — two raw words — in per-word atomic slots.
//! A thief reads a slot *before* its `compare_exchange` on `top`; the CAS
//! succeeding proves the slot was stable across the read (the owner cannot
//! have wrapped the ring without `top` advancing first), so a torn read is
//! always discarded with the failed CAS and never executed.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

// ----------------------------------------------------------------------
// Pool statistics
// ----------------------------------------------------------------------

/// Plain relaxed event counters for the global pool (the shim stays
/// dependency-free, so these are bare atomics rather than `obs` metrics;
/// the service layer mirrors them into its metric snapshots).
#[derive(Default)]
struct PoolCounters {
    /// Jobs taken from another worker's deque.
    steals: AtomicU64,
    /// Jobs submitted through the global injector.
    injected: AtomicU64,
    /// Jobs executed (any source).
    executed: AtomicU64,
    /// Times a worker or waiter parked on a condvar with nothing to do.
    sleeps: AtomicU64,
}

/// A point-in-time reading of the global pool's activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Number of persistent worker threads.
    pub workers: usize,
    /// Jobs stolen from another worker's deque.
    pub steals: u64,
    /// Jobs that went through the global injector.
    pub injected: u64,
    /// Jobs executed in total.
    pub executed: u64,
    /// Condvar parks (idle workers plus blocked waiters).
    pub sleeps: u64,
}

/// Read the global pool's counters (creates the pool if it does not exist
/// yet, like any other use of it).
pub fn pool_stats() -> PoolStats {
    let registry = Registry::global();
    PoolStats {
        workers: registry.num_workers(),
        steals: registry.counters.steals.load(Ordering::Relaxed),
        injected: registry.counters.injected.load(Ordering::Relaxed),
        executed: registry.counters.executed.load(Ordering::Relaxed),
        sleeps: registry.counters.sleeps.load(Ordering::Relaxed),
    }
}

// ----------------------------------------------------------------------
// Job representation
// ----------------------------------------------------------------------

/// A type-erased pointer to a job living on some stack frame (or heap
/// allocation, for [`scope`] spawns).  The pointee is guaranteed by the
/// latch discipline to outlive every `JobRef` to it: `join`/`scope` never
/// return before the job is executed or reclaimed.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

unsafe impl Send for JobRef {}

impl JobRef {
    #[inline]
    unsafe fn execute(self) {
        (self.execute)(self.data);
    }
}

const PENDING: u8 = 0;
const CLAIMED: u8 = 1;
const DONE: u8 = 2;

/// A job allocated in the caller's stack frame, used by [`join`].
///
/// The first executor to CAS `state` from `PENDING` to `CLAIMED` runs the
/// closure; everyone else backs off.  The owner blocks (helping) until
/// `DONE`, so the frame never dies with the job still referenced.
struct StackJob<F, R> {
    state: AtomicU8,
    func: std::cell::UnsafeCell<Option<F>>,
    result: std::cell::UnsafeCell<Option<std::thread::Result<R>>>,
}

unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        StackJob {
            state: AtomicU8::new(PENDING),
            func: std::cell::UnsafeCell::new(Some(func)),
            result: std::cell::UnsafeCell::new(None),
        }
    }

    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
        }
    }

    /// Claim and run the closure.  A lost claim race is a no-op: the job is
    /// being (or has been) executed by someone else.
    unsafe fn execute_erased(this: *const ()) {
        let this = &*(this as *const Self);
        this.try_execute();
    }

    fn try_execute(&self) -> bool {
        if self
            .state
            .compare_exchange(PENDING, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        let func = unsafe { (*self.func.get()).take().expect("job claimed twice") };
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        unsafe { *self.result.get() = Some(result) };
        self.state.store(DONE, Ordering::Release);
        true
    }

    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }

    fn take_result_raw(&self) -> std::thread::Result<R> {
        unsafe { (*self.result.get()).take() }.expect("job result taken twice")
    }
}

/// A heap-allocated fire-and-forget job, used by [`Scope::spawn`].  The
/// scope's completion counter keeps the spawning frame alive until every
/// heap job has run, which is what makes the lifetime erasure sound.
struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            data: Box::into_raw(self) as *const (),
            execute: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(this: *const ()) {
        let this = Box::from_raw(this as *mut Self);
        (this.func)();
    }
}

// ----------------------------------------------------------------------
// Chase-Lev-style deque
// ----------------------------------------------------------------------

/// One deque slot: the two words of a [`JobRef`], readable while a push
/// races (the reassembled value is discarded unless the steal CAS proves it
/// was stable).
struct Slot {
    data: AtomicUsize,
    exec: AtomicUsize,
}

/// Bounded work-stealing deque (Chase & Lev, with the memory-order recipe
/// of Lê et al., "Correct and Efficient Work-Stealing for Weak Memory
/// Models").  Bounded instead of growable: on overflow the owner routes the
/// job to the global injector, which keeps the unsafe surface small.
pub(crate) struct Deque {
    bottom: AtomicIsize,
    top: AtomicIsize,
    buffer: Box<[Slot]>,
    mask: usize,
}

const DEQUE_CAPACITY: usize = 4096; // power of two

impl Deque {
    fn new() -> Self {
        let buffer: Vec<Slot> = (0..DEQUE_CAPACITY)
            .map(|_| Slot {
                data: AtomicUsize::new(0),
                exec: AtomicUsize::new(0),
            })
            .collect();
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: buffer.into_boxed_slice(),
            mask: DEQUE_CAPACITY - 1,
        }
    }

    /// Owner-only: push at the bottom.  Returns the job back on overflow.
    fn push(&self, job: JobRef) -> Result<(), JobRef> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= self.buffer.len() as isize {
            return Err(job); // full: caller overflows to the injector
        }
        let slot = &self.buffer[(b as usize) & self.mask];
        slot.data.store(job.data as usize, Ordering::Relaxed);
        slot.exec.store(job.execute as usize, Ordering::Relaxed);
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop from the bottom (the most recently pushed job).
    fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = self.read_slot(b);
            if t == b {
                // Last element: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                return won.then_some(job);
            }
            Some(job)
        } else {
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            None
        }
    }

    /// Any thread: steal from the top (the oldest job).
    fn steal(&self) -> Option<JobRef> {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let job = self.read_slot(t);
            if self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return None; // lost the race; `job` may be torn — discard it
            }
            return Some(job);
        }
        None
    }

    fn read_slot(&self, index: isize) -> JobRef {
        let slot = &self.buffer[(index as usize) & self.mask];
        let data = slot.data.load(Ordering::Relaxed) as *const ();
        let exec = slot.exec.load(Ordering::Relaxed);
        JobRef {
            data,
            execute: unsafe { std::mem::transmute::<usize, unsafe fn(*const ())>(exec) },
        }
    }

    fn is_empty(&self) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        t >= b
    }
}

// ----------------------------------------------------------------------
// Registry (the global pool)
// ----------------------------------------------------------------------

thread_local! {
    /// Which worker of the global pool this thread is (`usize::MAX` when it
    /// is not a pool thread).
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

pub(crate) struct Registry {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Sleep support: workers that found no job park on the condvar; pushes
    /// wake one.  The counter keeps the notify on the push path to a single
    /// relaxed load when nobody sleeps.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Completion support: threads blocked in [`Registry::wait_until`] with
    /// no work to help with park here; every job completion notifies.  A
    /// condvar (not a timed sleep) keeps join-wait latency at wake-up cost
    /// rather than timer-slack cost.
    done_waiters: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// Activity counters surfaced by [`pool_stats`].
    counters: PoolCounters,
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();

impl Registry {
    /// The lazily created global pool.
    pub(crate) fn global() -> &'static Registry {
        REGISTRY.get_or_init(|| {
            let workers = std::thread::available_parallelism().map_or(1, usize::from);
            let registry: &'static Registry = Box::leak(Box::new(Registry {
                deques: (0..workers).map(|_| Deque::new()).collect(),
                injector: Mutex::new(VecDeque::new()),
                sleepers: AtomicUsize::new(0),
                sleep_lock: Mutex::new(()),
                sleep_cv: Condvar::new(),
                done_waiters: AtomicUsize::new(0),
                done_lock: Mutex::new(()),
                done_cv: Condvar::new(),
                counters: PoolCounters::default(),
            }));
            for index in 0..workers {
                std::thread::Builder::new()
                    .name(format!("ws-pool-{index}"))
                    .spawn(move || registry.worker_loop(index))
                    .expect("spawn work-stealing pool worker");
            }
            registry
        })
    }

    /// Number of persistent worker threads in the global pool.
    pub(crate) fn num_workers(&self) -> usize {
        self.deques.len()
    }

    /// The calling thread's worker index, if it is a pool thread.
    #[inline]
    pub(crate) fn current_worker() -> Option<usize> {
        let index = WORKER_INDEX.with(Cell::get);
        (index != usize::MAX).then_some(index)
    }

    /// Schedule a job from any thread: onto the caller's own deque when the
    /// caller is a pool worker (overflowing to the injector), otherwise
    /// into the injector.
    pub(crate) fn schedule(&self, job: JobRef) {
        match Self::current_worker() {
            Some(index) => {
                if let Err(job) = self.deques[index].push(job) {
                    self.inject(job);
                    return;
                }
            }
            None => {
                self.inject(job);
                return;
            }
        }
        self.wake_one();
    }

    fn inject(&self, job: JobRef) {
        self.counters.injected.fetch_add(1, Ordering::Relaxed);
        self.injector
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(job);
        self.wake_one();
    }

    /// Remove a not-yet-started injected job by identity (the owner of a
    /// [`join`] reclaiming its second closure).  `None` means a worker got
    /// to it first.
    fn remove_injected(&self, data: *const ()) -> Option<JobRef> {
        let mut queue = self.injector.lock().unwrap_or_else(|p| p.into_inner());
        let pos = queue.iter().position(|j| std::ptr::eq(j.data, data))?;
        queue.remove(pos)
    }

    fn wake_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep_lock.lock().unwrap_or_else(|p| p.into_inner());
            self.sleep_cv.notify_one();
        }
    }

    /// Find one unit of work: the local deque first (when on a worker),
    /// then the injector, then a steal sweep over the other workers.
    fn find_work(&self, local: Option<usize>) -> Option<JobRef> {
        if let Some(index) = local {
            if let Some(job) = self.deques[index].pop() {
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
        {
            return Some(job);
        }
        let n = self.deques.len();
        let start = local.unwrap_or(0);
        for i in 0..n {
            let victim = (start + i + 1) % n;
            if Some(victim) == local {
                continue;
            }
            if let Some(job) = self.deques[victim].steal() {
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Execute one available job.  Returns whether anything ran.
    fn work_once(&self, local: Option<usize>) -> bool {
        match self.find_work(local) {
            Some(job) => {
                unsafe { job.execute() };
                self.counters.executed.fetch_add(1, Ordering::Relaxed);
                // Whoever is blocked on this job's (or its scope's)
                // completion re-checks now instead of on a timer.
                self.signal_job_done();
                true
            }
            None => false,
        }
    }

    fn signal_job_done(&self) {
        if self.done_waiters.load(Ordering::Relaxed) > 0 {
            let _guard = self.done_lock.lock().unwrap_or_else(|p| p.into_inner());
            self.done_cv.notify_all();
        }
    }

    fn worker_loop(&'static self, index: usize) {
        WORKER_INDEX.with(|w| w.set(index));
        let mut idle_rounds = 0u32;
        loop {
            if self.work_once(Some(index)) {
                idle_rounds = 0;
                continue;
            }
            idle_rounds += 1;
            if idle_rounds < 64 {
                std::thread::yield_now();
            } else {
                // Park until a push wakes us (bounded, so a lost wake-up
                // only costs one timeout period).
                self.sleepers.fetch_add(1, Ordering::Relaxed);
                let guard = self.sleep_lock.lock().unwrap_or_else(|p| p.into_inner());
                if self.has_visible_work() {
                    drop(guard);
                } else {
                    self.counters.sleeps.fetch_add(1, Ordering::Relaxed);
                    let _ = self
                        .sleep_cv
                        .wait_timeout(guard, std::time::Duration::from_millis(10));
                }
                self.sleepers.fetch_sub(1, Ordering::Relaxed);
                idle_rounds = 0;
            }
        }
    }

    fn has_visible_work(&self) -> bool {
        if !self
            .injector
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_empty()
        {
            return true;
        }
        self.deques.iter().any(|d| !d.is_empty())
    }

    /// Help until `done()` holds: run other jobs while waiting, so blocked
    /// joins on pool workers keep the pool making progress; with nothing to
    /// help with, park on the completion condvar until some job finishes
    /// (with a bounded timeout as a lost-wakeup backstop).
    fn wait_until(&self, local: Option<usize>, done: impl Fn() -> bool) {
        let mut idle = 0u32;
        while !done() {
            if self.work_once(local) {
                idle = 0;
                continue;
            }
            idle += 1;
            if idle < 64 {
                std::thread::yield_now();
                continue;
            }
            self.done_waiters.fetch_add(1, Ordering::SeqCst);
            let guard = self.done_lock.lock().unwrap_or_else(|p| p.into_inner());
            // Re-check under the lock: a completion signalled before we
            // registered would otherwise be missed until the timeout.
            if !done() && !self.has_visible_work() {
                self.counters.sleeps.fetch_add(1, Ordering::Relaxed);
                let _ = self
                    .done_cv
                    .wait_timeout(guard, std::time::Duration::from_millis(1));
            }
            self.done_waiters.fetch_sub(1, Ordering::SeqCst);
            idle = 0;
        }
    }
}

// ----------------------------------------------------------------------
// join
// ----------------------------------------------------------------------

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// `b` is published to the pool; the calling thread runs `a` inline, then
/// either reclaims `b` (running it inline too — the common, steal-free
/// case) or helps the pool while a thief finishes it.  Panics in either
/// closure propagate to the caller after **both** closures have completed,
/// mirroring real rayon.
pub fn join<A, RA, B, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = Registry::global();
    let local = Registry::current_worker();
    let job_b = StackJob::new(b);
    let data_b = &job_b as *const _ as *const ();
    // Publish `b`, remembering where it landed (local deque, or injector
    // when off-pool / on overflow) so the reclaim below looks there.
    let in_deque = match local {
        Some(index) => match registry.deques[index].push(unsafe { job_b.as_job_ref() }) {
            Ok(()) => {
                registry.wake_one();
                true
            }
            Err(job) => {
                registry.inject(job);
                false
            }
        },
        None => {
            registry.inject(unsafe { job_b.as_job_ref() });
            false
        }
    };

    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Reclaim `b`'s JobRef before running it inline: the ref must leave the
    // queue before this frame can die, or a late thief would execute a
    // dangling pointer.  On a worker the local deque is LIFO; our own
    // `StackJob`s are balanced (nested joins consume theirs before `a`
    // returns), but helping during `a` can execute a *stolen scope job*
    // whose body spawned fire-and-forget `HeapJob`s onto this deque, above
    // `b`.  Pop until we reach `b` (executing any such foreign jobs — they
    // were scheduled here and running them is exactly what a worker would
    // do) or the deque drains (`b` was stolen).
    if in_deque {
        let deque = &registry.deques[local.expect("in_deque implies worker")];
        loop {
            match deque.pop() {
                Some(job) if std::ptr::eq(job.data, data_b) => {
                    // Exclusively ours now: a thief that read the slot
                    // before we popped it lost the steal CAS and discarded
                    // its copy.
                    unsafe { job.execute() };
                    break;
                }
                Some(job) => {
                    // A foreign (scope-spawned) job sitting above `b`.
                    unsafe { job.execute() };
                    registry.signal_job_done();
                }
                // Drained: a thief holds `b` — help until it reaches DONE.
                None => {
                    registry.wait_until(local, || job_b.is_done());
                    break;
                }
            }
        }
    } else {
        match registry.remove_injected(data_b) {
            Some(job) => unsafe { job.execute() },
            None => registry.wait_until(local, || job_b.is_done()),
        }
    }

    let result_b = job_b.take_result_raw();
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, Err(payload)) => panic::resume_unwind(payload),
    }
}

// ----------------------------------------------------------------------
// scope
// ----------------------------------------------------------------------

/// A scope for spawning fire-and-forget tasks that may borrow from the
/// enclosing stack frame ([`scope`] blocks until all of them finish).
pub struct Scope<'scope> {
    registry: &'static Registry,
    /// Spawned jobs not yet completed.
    pending: AtomicUsize,
    /// First panic observed in a spawned job, rethrown by [`scope`].
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Invariant over 'scope, as in real rayon.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

/// Create a scope: `op` may call [`Scope::spawn`] with closures borrowing
/// anything that outlives the `scope` call; all spawned work completes
/// before `scope` returns.  Panics from spawned jobs (and from `op`) are
/// propagated after every job has finished.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope {
        registry: Registry::global(),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        _marker: std::marker::PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    s.registry.wait_until(Registry::current_worker(), || {
        s.pending.load(Ordering::Acquire) == 0
    });
    if let Some(payload) = s.panic.lock().unwrap_or_else(|p| p.into_inner()).take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// `*const Scope` that crosses threads (sound: the scope outlives every
/// spawned job by construction).
struct ScopePtr<'scope>(*const Scope<'scope>);
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> ScopePtr<'scope> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field (edition-2021
    /// closures capture disjoint fields).
    fn get(&self) -> *const Scope<'scope> {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` into the pool.  It may borrow from outside the scope
    /// and may itself spawn further jobs onto the same scope.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let func: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = unsafe { &*scope_ptr.get() };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                let mut slot = scope.panic.lock().unwrap_or_else(|p| p.into_inner());
                slot.get_or_insert(payload);
            }
            scope.pending.fetch_sub(1, Ordering::Release);
        });
        // Erase 'scope: sound because `scope` does not return (and the
        // borrowed frame does not die) until `pending` drains to zero.
        let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(func) };
        self.registry
            .schedule(Box::new(HeapJob { func }).into_job_ref());
    }
}
