//! Offline stand-in for the small `rayon` API subset this workspace uses.
//!
//! The workspace must build without registry access, so this shim
//! re-implements the handful of parallel-iterator combinators the analytics
//! kernels call (`par_iter`, `par_iter_mut`, `into_par_iter`, `map`,
//! `filter_map`, `flat_map_iter`, `for_each`, `sum`, `reduce`, `collect`)
//! plus the `join`/`scope` primitives they are built from.
//!
//! Since PR 3 the combinators run on a **persistent work-stealing pool**
//! (see [`mod@pool`]): one lazily created set of worker threads with
//! per-worker Chase-Lev-style deques and a global injector, instead of the
//! seed's short-lived `std::thread::scope` threads per combinator call.
//! Every data-parallel operation — including the `collect`-heavy
//! `filter_map` / `flat_map_iter`, which used to concatenate sequentially —
//! splits its input into grain-sized chunks with recursive [`join`] and
//! gathers the results in parallel, preserving rayon's ordering semantics
//! (`collect` sees items in input order).
//!
//! Thread-count scoping follows rayon's API shape: a [`ThreadPool`] built
//! with `n` threads does not own threads of its own; its
//! [`ThreadPool::install`] scope bounds the *split width* of parallel
//! operations started inside it to `n` leaves, so at most `n` of the global
//! pool's workers execute them concurrently (and `n == 1` runs exactly
//! sequentially on the calling thread).  The installed count is restored on
//! scope exit by a drop guard, so nested `install`s and unwinding panics
//! cannot leak an inner thread count into the outer scope.

pub mod pool;

use std::cell::Cell;
use std::mem::ManuallyDrop;

pub use pool::{join, pool_stats, scope, PoolStats, Scope};

pub mod prelude {
    //! Traits that put `par_iter` / `par_iter_mut` / `into_par_iter` in scope.
    pub use crate::{IntoParallelIterator, ParSlice, ParSliceMut};
}

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations will currently use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// How many leaf chunks a parallel operation started on this thread should
/// split into: exactly the installed count inside [`ThreadPool::install`]
/// (so the scope's concurrency bound holds), or an over-split of the pool
/// size otherwise (so work stealing can balance uneven chunks).
fn target_leaves() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        pool::Registry::global().num_workers() * 4
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never constructed by
/// this shim, which cannot fail to "build" a pool).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Create a builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.  Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that scopes the thread count used by parallel operations.
///
/// It owns no threads: work always executes on the global work-stealing
/// pool, and `install` merely bounds how wide operations split (which in
/// turn bounds how many workers can run them concurrently).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing any parallel
    /// operations it performs.  The previous count is restored by a drop
    /// guard, so nested `install` scopes compose and a panic inside `f`
    /// unwinds with the outer count back in place.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ----------------------------------------------------------------------
// Split-based parallel machinery
// ----------------------------------------------------------------------

/// A raw pointer that crosses threads.  Every use hands disjoint index
/// ranges to different tasks, so no two tasks touch the same element.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    unsafe fn add(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

/// Run `body(lo, hi)` over `[0, len)` split into at most `leaves` chunks,
/// recursively forked with [`join`] so idle workers steal the larger half.
///
/// The caller's installed thread count is re-installed around every leaf
/// execution (leaves run on pool workers whose own thread-local count is
/// the default), so parallel operations nested *inside* a leaf observe the
/// same `install` scope as the operation that spawned them.
fn run_chunks(len: usize, leaves: usize, body: &(impl Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    let installed = INSTALLED_THREADS.with(Cell::get);
    let wrapped = move |lo: usize, hi: usize| {
        let prev = INSTALLED_THREADS.with(|c| c.replace(installed));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        body(lo, hi);
    };
    let grain = len.div_ceil(leaves.max(1)).max(1);
    split_range(0, len, grain, &wrapped);
}

fn split_range(lo: usize, hi: usize, grain: usize, body: &(impl Fn(usize, usize) + Sync)) {
    let chunks = (hi - lo).div_ceil(grain);
    if chunks <= 1 {
        body(lo, hi);
        return;
    }
    // Split on a grain boundary so the chunk count stays exactly
    // ceil(len / grain) — the concurrency bound `install` promises.
    let mid = lo + (chunks / 2) * grain;
    join(
        || split_range(lo, mid, grain, body),
        || split_range(mid, hi, grain, body),
    );
}

/// Apply `f` to every item in parallel, writing results to their input
/// positions.  Panics in `f` propagate; the inputs and any written outputs
/// are leaked on that path (never double-dropped).
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    let leaves = target_leaves().min(len);
    if leaves <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut items = ManuallyDrop::new(items);
    let src_ptr = items.as_mut_ptr();
    let src_cap = items.capacity();
    let mut out: Vec<U> = Vec::with_capacity(len);
    let src = SendPtr(src_ptr);
    let dst = SendPtr(out.as_mut_ptr());
    run_chunks(len, leaves, &|lo, hi| {
        for i in lo..hi {
            // Each index is moved out and written exactly once: chunks are
            // disjoint and cover [0, len).
            unsafe {
                let x = std::ptr::read(src.add(i));
                std::ptr::write(dst.add(i), f(x));
            }
        }
    });
    // Free the source allocation without dropping its (moved-out) items.
    unsafe {
        drop(Vec::from_raw_parts(src_ptr, 0, src_cap));
        out.set_len(len);
    }
    out
}

/// Run `per_item` on every item in parallel and gather the variable-length
/// per-chunk outputs into one vector in input order.  Both phases split:
/// the chunks produce their local buffers concurrently, and after a cheap
/// prefix-sum over buffer lengths the buffers are moved into their final
/// positions concurrently too.
fn parallel_chunk_collect<T, U, F>(items: Vec<T>, per_item: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T, &mut Vec<U>) + Sync,
{
    let len = items.len();
    let leaves = target_leaves().min(len);
    if leaves <= 1 {
        let mut out = Vec::new();
        for item in items {
            per_item(item, &mut out);
        }
        return out;
    }
    let grain = len.div_ceil(leaves);
    let ranges: Vec<(usize, usize)> = (0..len)
        .step_by(grain)
        .map(|lo| (lo, (lo + grain).min(len)))
        .collect();
    let mut items = ManuallyDrop::new(items);
    let src_ptr = items.as_mut_ptr();
    let src_cap = items.capacity();
    let src = SendPtr(src_ptr);
    let buffers: Vec<Vec<U>> = parallel_map(ranges, |(lo, hi)| {
        let mut buf = Vec::new();
        for i in lo..hi {
            let item = unsafe { std::ptr::read(src.add(i)) };
            per_item(item, &mut buf);
        }
        buf
    });
    unsafe { drop(Vec::from_raw_parts(src_ptr, 0, src_cap)) };

    // Prefix-sum the buffer lengths (O(#chunks), trivially cheap)...
    let total: usize = buffers.iter().map(Vec::len).sum();
    let mut offset = 0usize;
    let placed: Vec<(usize, Vec<U>)> = buffers
        .into_iter()
        .map(|buf| {
            let o = offset;
            offset += buf.len();
            (o, buf)
        })
        .collect();
    // ...then move every buffer into its slice of the output in parallel.
    let mut out: Vec<U> = Vec::with_capacity(total);
    let dst = SendPtr(out.as_mut_ptr());
    parallel_map(placed, |(o, buf)| {
        let mut buf = ManuallyDrop::new(buf);
        unsafe {
            std::ptr::copy_nonoverlapping(buf.as_ptr(), dst.add(o), buf.len());
            drop(Vec::from_raw_parts(buf.as_mut_ptr(), 0, buf.capacity()));
        }
    });
    unsafe { out.set_len(total) };
    out
}

/// Fold each chunk locally, then combine the (few) per-chunk accumulators.
fn parallel_fold_chunks<T, S, F>(items: Vec<T>, fold_chunk: F) -> Vec<S>
where
    T: Send,
    S: Send,
    F: Fn(Vec<T>) -> S + Sync,
{
    let len = items.len();
    let leaves = target_leaves().min(len);
    if leaves <= 1 {
        return vec![fold_chunk(items)];
    }
    let grain = len.div_ceil(leaves);
    let ranges: Vec<(usize, usize)> = (0..len)
        .step_by(grain)
        .map(|lo| (lo, (lo + grain).min(len)))
        .collect();
    let mut items = ManuallyDrop::new(items);
    let src_ptr = items.as_mut_ptr();
    let src_cap = items.capacity();
    let src = SendPtr(src_ptr);
    let folded = parallel_map(ranges, |(lo, hi)| {
        let chunk: Vec<T> = (lo..hi)
            .map(|i| unsafe { std::ptr::read(src.add(i)) })
            .collect();
        fold_chunk(chunk)
    });
    unsafe { drop(Vec::from_raw_parts(src_ptr, 0, src_cap)) };
    folded
}

/// A materialised parallel iterator: the concrete type behind every
/// combinator chain in this shim.
pub struct Par<T: Send> {
    items: Vec<T>,
}

impl<T: Send> Par<T> {
    /// Transform every item in parallel.
    pub fn map<U: Send>(self, f: impl Fn(T) -> U + Sync) -> Par<U> {
        Par {
            items: parallel_map(self.items, f),
        }
    }

    /// Transform and filter every item in parallel.  The surviving items
    /// are gathered in input order by a parallel two-phase collect.
    pub fn filter_map<U: Send>(self, f: impl Fn(T) -> Option<U> + Sync) -> Par<U> {
        Par {
            items: parallel_chunk_collect(self.items, |item, buf| {
                if let Some(u) = f(item) {
                    buf.push(u);
                }
            }),
        }
    }

    /// Map each item to a serial iterator and concatenate the results in
    /// input order (rayon's `flat_map_iter`), gathering in parallel.
    pub fn flat_map_iter<I>(self, f: impl Fn(T) -> I + Sync) -> Par<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
    {
        Par {
            items: parallel_chunk_collect(self.items, |item, buf| buf.extend(f(item))),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each(self, f: impl Fn(T) + Sync) {
        // Vec<()> is zero-sized — no allocation happens for the results.
        parallel_map(self.items, f);
    }

    /// Pair every item with its index (cheap, serial).
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Sum the items, folding each chunk in parallel.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        parallel_fold_chunks(self.items, |chunk| chunk.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Fold the items with `op`, starting from `identity()`: each chunk
    /// folds in parallel, then the per-chunk results fold serially (`op`
    /// must be associative, as in rayon).
    pub fn reduce(self, identity: impl Fn() -> T + Sync, op: impl Fn(T, T) -> T + Sync) -> T {
        parallel_fold_chunks(self.items, |chunk| chunk.into_iter().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Largest item, if any.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Gather the items, preserving input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`Par`] by value (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type of the resulting parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par {
            items: self.collect(),
        }
    }
}

/// `par_iter` over slices (and anything that derefs to a slice).
pub trait ParSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> Par<&T>;
}

impl<T: Sync> ParSlice<T> for [T] {
    fn par_iter(&self) -> Par<&T> {
        Par {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut` over slices (and anything that derefs to a slice).
pub trait ParSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> Par<&mut T>;
}

impl<T: Send> ParSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<&mut T> {
        Par {
            items: self.iter_mut().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn sum_and_reduce() {
        let s: u64 = (0..1000u64).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 499_500);
        let any = vec![false, true, false]
            .into_par_iter()
            .reduce(|| false, |a, b| a || b);
        assert!(any);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut v = vec![0usize; 4096];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let v: Vec<u32> = vec![1u32, 2, 3]
            .into_par_iter()
            .flat_map_iter(|x| (0..x).collect::<Vec<_>>())
            .collect();
        assert_eq!(v, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn flat_map_iter_parallel_gather_at_scale() {
        // Large enough to split into many chunks with uneven outputs.
        let v: Vec<u64> = (0..10_000u64)
            .into_par_iter()
            .flat_map_iter(|x| (0..(x % 7)).map(move |k| x * 10 + k))
            .collect();
        let expect: Vec<u64> = (0..10_000u64)
            .flat_map(|x| (0..(x % 7)).map(move |k| x * 10 + k))
            .collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn nested_install_restores_outer_count_on_unwind() {
        let outer = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 5);
            // Plain nesting restores on exit...
            assert_eq!(inner.install(current_num_threads), 2);
            assert_eq!(current_num_threads(), 5);
            // ...and a panic unwinding out of the inner scope restores too
            // (the drop guard, not a bare Cell::set after `f`).
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inner.install(|| -> usize { panic!("inner scope blew up") })
            }));
            assert!(caught.is_err());
            assert_eq!(current_num_threads(), 5);
        });
    }

    #[test]
    fn filter_map_drops_nones() {
        let v: Vec<u64> = (0..100u64)
            .into_par_iter()
            .filter_map(|x| (x % 10 == 0).then_some(x))
            .collect();
        assert_eq!(v, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn filter_map_keeps_order_at_scale() {
        let v: Vec<u64> = (0..50_000u64)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        let expect: Vec<u64> = (0..50_000u64).filter(|x| x % 3 == 0).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn install_one_thread_runs_inline() {
        // With one installed thread the combinators must not touch the
        // pool: the closure observes the calling thread throughout.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let me = std::thread::current().id();
        pool.install(|| {
            (0..256u64).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), me);
            });
        });
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_nests_deeply() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_propagates_panics_after_both_sides_finish() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let b_ran = AtomicBool::new(false);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join(
                || panic!("side a failed"),
                || b_ran.store(true, Ordering::SeqCst),
            )
        }));
        assert!(caught.is_err());
        assert!(
            b_ran.load(Ordering::SeqCst),
            "b must complete before unwind"
        );
    }

    #[test]
    fn scope_spawns_borrowing_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_supports_nested_spawns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_propagates_spawned_panic() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(|s| s.spawn(|_| panic!("spawned job failed")))
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn install_width_propagates_into_leaf_jobs() {
        // Leaves run on pool workers whose own thread-local count is the
        // default; the splitting machinery must carry the caller's
        // installed width into them so nested parallel ops stay bounded.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            (0..10_000u64).into_par_iter().for_each(|_| {
                assert_eq!(current_num_threads(), 2);
            });
        });
    }

    #[test]
    fn scope_spawns_do_not_corrupt_concurrent_joins() {
        // Regression: a worker helping mid-join can execute a stolen scope
        // job that spawns heap jobs onto the worker's own deque, above the
        // join's pending closure — the join's reclaim must pop through
        // them instead of mistaking one for its own job.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        std::thread::scope(|ts| {
            for _ in 0..4 {
                ts.spawn(|| {
                    for _ in 0..50 {
                        scope(|s| {
                            for _ in 0..8 {
                                s.spawn(|s| {
                                    s.spawn(|_| {
                                        hits.fetch_add(1, Ordering::Relaxed);
                                    });
                                });
                            }
                        });
                    }
                });
                ts.spawn(|| {
                    for i in 0..50u64 {
                        let v: Vec<u64> = (0..2000u64).into_par_iter().map(|x| x + i).collect();
                        assert!(v.iter().enumerate().all(|(k, &x)| x == k as u64 + i));
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4 * 50 * 8);
    }

    #[test]
    fn pool_stats_counts_executed_jobs() {
        let before = pool_stats();
        assert!(before.workers >= 1);
        (0..10_000u64).into_par_iter().for_each(|_| {});
        let after = pool_stats();
        assert!(
            after.executed > before.executed || after.workers == 1,
            "parallel work must show up in executed count: {before:?} -> {after:?}"
        );
        assert!(after.steals >= before.steals);
        assert!(after.injected >= before.injected);
    }

    #[test]
    fn parallel_work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        // Plenty of slow-ish leaves so multiple workers get a share.
        (0..10_000u64).into_par_iter().for_each(|i| {
            if i % 100 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
                seen.lock().unwrap().insert(std::thread::current().id());
            }
        });
        // On a multi-core machine at least two distinct threads take part.
        if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
            assert!(seen.lock().unwrap().len() >= 2, "no stealing happened");
        }
    }
}
