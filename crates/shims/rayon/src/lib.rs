//! Offline stand-in for the small `rayon` API subset this workspace uses.
//!
//! The workspace must build without registry access, so this shim
//! re-implements the handful of parallel-iterator combinators the analytics
//! kernels call (`par_iter`, `par_iter_mut`, `into_par_iter`, `map`,
//! `filter_map`, `flat_map_iter`, `for_each`, `sum`, `reduce`, `collect`)
//! on top of `std::thread::scope`.
//!
//! Unlike real rayon there is no work-stealing pool: each combinator chain
//! materialises its input, splits it into one contiguous chunk per thread
//! and joins the per-chunk results in order.  That preserves rayon's
//! ordering semantics (`collect` sees items in input order) and gives real
//! multi-core speed-ups for the flat data-parallel loops used here, at the
//! cost of spawning short-lived threads per call.  The thread count comes
//! from the innermost [`ThreadPool::install`] scope, defaulting to the
//! machine's available parallelism.

use std::cell::Cell;

pub mod prelude {
    //! Traits that put `par_iter` / `par_iter_mut` / `into_par_iter` in scope.
    pub use crate::{IntoParallelIterator, ParSlice, ParSliceMut};
}

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations will currently use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never constructed by
/// this shim, which cannot fail to "build" a pool).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Create a builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.  Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that scopes the thread count used by parallel operations.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing any parallel
    /// operations it performs.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Apply `f` to every item, fanning the items out over the current thread
/// count, and return the per-item results in input order.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let per_chunk: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for part in per_chunk {
        out.extend(part);
    }
    out
}

/// A materialised parallel iterator: the concrete type behind every
/// combinator chain in this shim.
pub struct Par<T: Send> {
    items: Vec<T>,
}

impl<T: Send> Par<T> {
    /// Transform every item in parallel.
    pub fn map<U: Send>(self, f: impl Fn(T) -> U + Sync) -> Par<U> {
        Par {
            items: parallel_map(self.items, f),
        }
    }

    /// Transform and filter every item in parallel.
    pub fn filter_map<U: Send>(self, f: impl Fn(T) -> Option<U> + Sync) -> Par<U> {
        Par {
            items: parallel_map(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Map each item to a serial iterator and concatenate the results in
    /// input order (rayon's `flat_map_iter`).
    pub fn flat_map_iter<I>(self, f: impl Fn(T) -> I + Sync) -> Par<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
    {
        let nested = parallel_map(self.items, |t| f(t).into_iter().collect::<Vec<_>>());
        Par {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each(self, f: impl Fn(T) + Sync) {
        parallel_map(self.items, f);
    }

    /// Pair every item with its index (cheap, serial).
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Sum the (already materialised) items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Fold the items with `op`, starting from `identity()`.
    pub fn reduce(self, identity: impl Fn() -> T, op: impl Fn(T, T) -> T + Sync) -> T {
        self.items.into_iter().fold(identity(), &op)
    }

    /// Largest item, if any.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Gather the items, preserving input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`Par`] by value (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type of the resulting parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par {
            items: self.collect(),
        }
    }
}

/// `par_iter` over slices (and anything that derefs to a slice).
pub trait ParSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> Par<&T>;
}

impl<T: Sync> ParSlice<T> for [T] {
    fn par_iter(&self) -> Par<&T> {
        Par {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut` over slices (and anything that derefs to a slice).
pub trait ParSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> Par<&mut T>;
}

impl<T: Send> ParSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<&mut T> {
        Par {
            items: self.iter_mut().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn sum_and_reduce() {
        let s: u64 = (0..1000u64).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 499_500);
        let any = vec![false, true, false]
            .into_par_iter()
            .reduce(|| false, |a, b| a || b);
        assert!(any);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut v = vec![0usize; 4096];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let v: Vec<u32> = vec![1u32, 2, 3]
            .into_par_iter()
            .flat_map_iter(|x| (0..x).collect::<Vec<_>>())
            .collect();
        assert_eq!(v, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn filter_map_drops_nones() {
        let v: Vec<u64> = (0..100u64)
            .into_par_iter()
            .filter_map(|x| (x % 10 == 0).then_some(x))
            .collect();
        assert_eq!(v, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }
}
